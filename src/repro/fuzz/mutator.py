"""Random protocol-table and validate-policy mutations.

The verify subsystem ships three hand-seeded bugs
(:data:`repro.verify.mutations.MUTATIONS`); the campaign generalizes
them into a *descriptor* space it can sample forever.  A descriptor is
a plain tuple (picklable, hashable, reportable):

* ``("seeded", name)`` — one of the hand-seeded bugs;
* ``("fill-state", txn, pre, post)`` — requester fills install
  ``post`` instead of ``pre`` for transaction kind ``txn``;
* ``("post-validate", letter)`` — the validating owner retires to
  ``letter``;
* ``("revalidated", letter)`` — remote T copies re-install as
  ``letter`` on a validate;
* ``("writes-back-flip",)`` — invert whether a validate updates
  memory;
* ``("remote-row", pre, label, post)`` — force one row of the remote
  snoop table to land in ``post``.

:func:`apply_descriptor` builds each mutant on a **fresh**
:class:`~repro.coherence.protocol.ProtocolLogic` copy (same discipline
as :func:`~repro.verify.mutations.apply_mutation`), so mutants can
never leak between iterations.  Random sampling avoids the obvious
equivalent mutants (it probes the pristine table and picks a *different*
post state), but a random mutant the bounded checker does not flag is
still only evidence, not a finding — equivalent mutants exist.  The
hand-seeded bugs, by contrast, are known-detectable: the campaign
treats any undetected seeded mutation as a ``mutation-escape``
finding.
"""

from __future__ import annotations

from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.protocol import ProtocolLogic
from repro.coherence.states import LineState
from repro.common.rng import SplitRng
from repro.verify.model import ProtocolSpec
from repro.verify.mutations import MUTATIONS, TEMPORAL_ONLY, apply_mutation

#: Descriptor tuple — see the module docstring for the grammar.
Descriptor = tuple


def seeded_plan() -> tuple[tuple[str, Descriptor], ...]:
    """Every hand-seeded bug, paired with a protocol that exposes it.

    Temporal-only mutations run on MESTI (the simplest protocol with a
    T state); the rest run on plain MESI.  The campaign walks this
    plan before sampling randomly, so any budget >= its length
    rediscovers all of :data:`~repro.verify.mutations.MUTATIONS`.
    """
    return tuple(
        ("mesti" if name in TEMPORAL_ONLY else "mesi", ("seeded", name))
        for name in sorted(MUTATIONS)
    )


def descriptor_name(descriptor: Descriptor) -> str:
    """Stable human-readable name, e.g. ``remote-row:T:Read+flush:S``."""
    return ":".join(str(part) for part in descriptor)


def _force_fill(protocol: ProtocolLogic, txn: str, pre: str, post: str) -> None:
    kind_match = TxnKind(txn)
    orig = protocol.fill_state

    def fill_state(kind, result, _orig=orig):
        state = _orig(kind, result)
        if kind is kind_match and state is LineState(pre):
            return LineState(post)
        return state

    protocol.fill_state = fill_state  # type: ignore[method-assign]


def _force_post_validate(protocol: ProtocolLogic, letter: str) -> None:
    protocol.post_validate_state = (  # type: ignore[method-assign]
        lambda: LineState(letter)
    )


def _force_revalidated(protocol: ProtocolLogic, letter: str) -> None:
    protocol.revalidated_state = (  # type: ignore[method-assign]
        lambda: LineState(letter)
    )


def _flip_writes_back(protocol: ProtocolLogic) -> None:
    # ``validate_writes_back`` is a class-level property, so the flip
    # needs a throwaway subclass; the instance is a fresh copy anyway.
    flipped = not protocol.validate_writes_back
    base = type(protocol)
    protocol.__class__ = type(
        f"{base.__name__}WritesBackFlipped",
        (base,),
        {"validate_writes_back": property(lambda self: flipped)},
    )


def _force_remote_row(
    protocol: ProtocolLogic, pre: str, label: str, post: str
) -> None:
    orig = protocol.snoop_apply

    def snoop_apply(line, kind, result, _orig=orig):
        match = (
            line.state.value == pre
            and ProtocolLogic.snoop_event_label(kind, result) == label
        )
        _orig(line, kind, result)
        if match:
            line.state = LineState(post)

    protocol.snoop_apply = snoop_apply  # type: ignore[method-assign]


def apply_descriptor(spec: ProtocolSpec, descriptor: Descriptor) -> ProtocolLogic:
    """Build a fresh mutant of ``spec``'s protocol from a descriptor."""
    kind = descriptor[0]
    if kind == "seeded":
        return apply_mutation(spec.make_logic(), descriptor[1])
    logic = spec.make_logic()
    if kind == "fill-state":
        _force_fill(logic, descriptor[1], descriptor[2], descriptor[3])
    elif kind == "post-validate":
        _force_post_validate(logic, descriptor[1])
    elif kind == "revalidated":
        _force_revalidated(logic, descriptor[1])
    elif kind == "writes-back-flip":
        _flip_writes_back(logic)
    elif kind == "remote-row":
        _force_remote_row(logic, descriptor[1], descriptor[2], descriptor[3])
    else:
        raise ValueError(f"unknown mutation descriptor {descriptor!r}")
    return logic


def random_descriptor(rng: SplitRng, spec: ProtocolSpec) -> Descriptor:
    """Sample one random descriptor valid for ``spec``.

    Samples are steered away from trivially equivalent mutants: the
    pristine table is probed first and the mutated outcome is always a
    *different* state letter.
    """
    logic = spec.make_logic()
    letters = [s.value for s in logic.states()]
    shapes = ["fill-state", "remote-row"]
    if logic.has_temporal:
        shapes += ["post-validate", "revalidated", "writes-back-flip"]
    shape = rng.choice(tuple(shapes))
    if shape == "fill-state":
        txn = rng.choice((TxnKind.READ, TxnKind.READX))
        result = SnoopResult()
        result.shared = rng.choice((True, False))
        probe = logic.fill_state(txn, result)
        post = rng.choice(tuple(x for x in letters if x != probe.value))
        return ("fill-state", txn.value, probe.value, post)
    if shape == "post-validate":
        current = logic.post_validate_state().value
        return ("post-validate",
                rng.choice(tuple(x for x in letters if x != current)))
    if shape == "revalidated":
        current = logic.revalidated_state().value
        return ("revalidated",
                rng.choice(tuple(x for x in letters if x != current)))
    if shape == "writes-back-flip":
        return ("writes-back-flip",)
    # remote-row: probe a random legal row, force a different outcome.
    labels = logic.remote_event_labels()
    for _ in range(16):
        pre = rng.choice(tuple(letters))
        label = rng.choice(tuple(labels))
        post = logic.probe_remote(LineState(pre), label)
        if post == "illegal":
            continue
        forced = rng.choice(tuple(x for x in letters if x != post))
        return ("remote-row", pre, label, forced)
    # Every sampled row was illegal (vanishingly unlikely): fall back
    # to a known-meaningful row flip.
    return ("remote-row", "M", TxnKind.READX.value, "M")
