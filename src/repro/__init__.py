"""Reproduction of Lepak & Lipasti, "Reaping the Benefit of Temporal
Silence to Improve Communication Performance" (ISPASS 2005).

Public API tour:

* :func:`repro.common.config.scaled_config` /
  :func:`~repro.common.config.table1_config` — machine configurations.
* :func:`repro.system.techniques.configure_technique` — select one of
  the paper's technique combinations (base / mesti / emesti / lvp /
  sle / combinations).
* :func:`repro.workloads.registry.get_benchmark` — the seven Table 2
  workload models.
* :class:`repro.system.system.System` / :func:`~repro.system.system.run_workload`
  — build and run a simulation, returning a
  :class:`~repro.system.system.RunResult`.
* :mod:`repro.experiments` — regenerate every table and figure.
* :class:`repro.obs.Tracer` — structured event tracing (pass to
  :class:`System`); histograms/profiling in :mod:`repro.obs` and
  :mod:`repro.common.stats` (docs/observability.md).
"""

from repro.common.config import (
    MachineConfig,
    ProtocolKind,
    ValidatePolicy,
    scaled_config,
    table1_config,
)
from repro.obs import TraceFilter, Tracer
from repro.system.system import RunResult, System, run_workload
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from repro.workloads.registry import BENCHMARKS, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "ProtocolKind",
    "ValidatePolicy",
    "scaled_config",
    "table1_config",
    "RunResult",
    "System",
    "run_workload",
    "Tracer",
    "TraceFilter",
    "ALL_TECHNIQUES",
    "configure_technique",
    "BENCHMARKS",
    "get_benchmark",
    "__version__",
]
