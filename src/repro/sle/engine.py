"""The SLE elision engine (one per core).

Implements the in-core variant of §4.2: speculation support is the
existing window (ROB), so a critical section must fit within
``rob_threshold`` of it; speculative stores are buffered in the window
(never drain) with exclusive-ownership prefetches issued eagerly; the
region commits atomically when the release store (a store restoring
the larx-observed value to the lock address — the temporally silent
half of the pair) completes, applying all buffered stores at once.

Aborts and their handling:

* ``conflict``  — a remote transaction touched the speculative read or
  write set.  Up to ``restart_limit`` restarts re-elide; afterwards the
  engine falls back.
* ``no_release`` — the region hit the ROB threshold without finding a
  release (the dominant failure in full-system code: the larx/stcx
  idiom also implements atomic increments, list ops, ...; §4.1).
* ``serialize`` — an isync touching context-sensitive state (or any
  isync, when the §4.2.2 safety check is disabled).
* ``nested``    — another control op (nested lock, barrier spin) inside
  the region.

The elided stcx *architecturally commits* reporting success before the
region outcome is known; on a non-retried abort the engine *makes the
success true* before replaying the squashed region: for lock acquires
it spins a compare-and-swap until the lock is really taken, for atomic
read-modify-write idioms it applies the operation atomically (the
``sle_fallback`` recipe carried in the stcx metadata).  The program
therefore never observes a contradiction, and region replay is exact.
"""

from __future__ import annotations

import enum

from repro.common.addressing import line_address
from repro.common.config import MachineConfig
from repro.common.events import Scheduler
from repro.common.stats import ScopedStats
from repro.coherence.messages import BusTransaction, TxnKind
from repro.cpu.core import Core, Phase, WinOp
from repro.cpu.isa import OpKind
from repro.memory.hierarchy import NodeMemory
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.sle.confidence import ElisionConfidence
from repro.sle.idiom import IdiomTracker

_BACKOFF_START = 50
_BACKOFF_CAP = 800

#: The fixed abort-reason vocabulary (see the module docstring).
ABORT_REASONS = ("no_release", "conflict", "serialize", "nested")


class Mode(enum.Enum):
    """Engine lifecycle state."""
    IDLE = "idle"
    SPECULATING = "speculating"
    ACQUIRING = "acquiring"  # fallback acquisition after a failed elision


class SLEEngine:
    """Drives elision for one core."""

    def __init__(
        self,
        config: MachineConfig,
        core: Core,
        node: NodeMemory,
        scheduler: Scheduler,
        stats: ScopedStats,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ):
        self.config = config
        self.core = core
        self.node = node
        self.scheduler = scheduler
        self.stats = stats
        self.tracer = tracer
        node_id = core.core_id
        self._m_candidates = metrics.bound_counter(
            stats, "candidates",
            "repro_sle_candidates_total", "Elidable lock-acquire candidates",
            node=node_id,
        )
        self._m_filtered = metrics.bound_counter(
            stats, "filtered_by_confidence",
            "repro_sle_confidence_filtered_total",
            "Candidates skipped by the elision confidence filter",
            node=node_id,
        )
        self._m_attempts = metrics.bound_counter(
            stats, "attempts",
            "repro_sle_attempts_total", "Elision attempts started",
            node=node_id,
        )
        self._m_commits = metrics.bound_counter(
            stats, "successes",
            "repro_sle_commits_total", "Elided regions committed atomically",
            node=node_id,
        )
        self._m_aborts = {
            reason: metrics.bound_counter(
                stats, f"failure.{reason}",
                "repro_sle_aborts_total", "Elision aborts by reason",
                node=node_id, reason=reason,
            )
            for reason in ABORT_REASONS
        }
        self._m_restarts = metrics.bound_counter(
            stats, "restarts",
            "repro_sle_restarts_total", "Conflict-aborted regions re-elided",
            node=node_id,
        )
        self._m_fallbacks = metrics.bound_counter(
            stats, "fallback_acquisitions",
            "repro_sle_fallbacks_total",
            "Elisions abandoned for a real lock acquisition",
            node=node_id,
        )
        self.confidence = ElisionConfidence(config.sle, stats)
        self.idiom = IdiomTracker()
        self.max_region = max(4, int(config.sle.rob_threshold * config.core.rob_size))
        self.mode = Mode.IDLE
        # Region state (valid while SPECULATING / ACQUIRING):
        self.lock_addr = 0
        self.lock_base = 0
        self.free_value = 0
        self.held_value = 0
        self.stcx_pc = 0
        self.fallback: tuple | None = None
        self.restarts = 0
        self.region_ops: list[WinOp] = []
        self.read_set: set[int] = set()
        self.write_set: set[int] = set()
        self.release_w: WinOp | None = None
        self.prefetch_outstanding = 0
        self._region_token: object = object()
        self._commit_token: object | None = None
        self._pending_stores: list = []  # checkpoint-mode abort replay
        self._reexec_charge = 0
        # Trace span covering the current elision region (None when
        # idle/untraced); stays open across conflict retries.
        self._span: int | None = None
        core.sle_engine = self
        node.sle_engine = self

    @property
    def active(self) -> bool:
        """True while the engine is speculating or acquiring a fallback."""
        return self.mode is not Mode.IDLE

    # ------------------------------------------------------------------
    # Core fetch hook
    # ------------------------------------------------------------------

    def on_fetch(self, w: WinOp) -> None:
        """Observe a fetched op (region tracking, idiom notes, aborts)."""
        op = w.op
        if self.mode is Mode.SPECULATING and self.release_w is None:
            self._on_region_fetch(w)
            if w.dead or self.mode is not Mode.SPECULATING:
                return
        if self.mode is Mode.IDLE and op.kind is OpKind.LARX:
            self.idiom.note_larx(w)

    def _on_region_fetch(self, w: WinOp) -> None:
        op = w.op
        kind = op.kind
        if kind in (OpKind.ISYNC, OpKind.SYNC):
            unsafe = kind is OpKind.ISYNC and (
                op.unsafe_ctx or not self.config.sle.isync_safety_check
            )
            if unsafe:
                self._abort("serialize", trigger=w)
                return
            # Safe: the serialization is elided inside the region
            # (§4.2.2) — treat as a buffered no-op.
            w.sle_buffered = True
            w.sle_blocked = True
            self.region_ops.append(w)
            return
        if kind is OpKind.END:
            self._abort("no_release", trigger=w)
            return
        if op.control:
            # Nested synchronization / control barrier to speculation.
            self._abort("nested", trigger=w)
            return
        checkpoint = self.config.sle.checkpoint_mode
        if (
            kind is OpKind.STORE
            and op.addr == self.lock_addr
            and op.value == self.free_value
        ):
            # The release: the temporally silent store completing the
            # atomic pair.  It is elided along with the acquire.
            w.sle_blocked = not checkpoint
            w.sle_buffered = True
            self.region_ops.append(w)
            self.release_w = w
            self._try_commit_region()
            return
        # In-core buffering holds region ops in the window until the
        # atomic commit; checkpoint mode (§4.2.1, Rajwar) lets them
        # retire and bounds speculation by the store buffer instead.
        w.sle_blocked = not checkpoint
        self.region_ops.append(w)
        if kind is OpKind.STORE:
            w.sle_buffered = True
            self.write_set.add(line_address(op.addr, self.config.line_size))
            self._prefetch(op.addr)
        elif kind in (OpKind.LOAD, OpKind.LARX):
            self.read_set.add(line_address(op.addr, self.config.line_size))
        if checkpoint:
            stores = sum(1 for r in self.region_ops if r.op.kind is OpKind.STORE)
            loads = sum(
                1 for r in self.region_ops
                if r.op.kind in (OpKind.LOAD, OpKind.LARX)
            )
            if (
                stores > self.config.core.store_buffer
                or loads > self.config.l1.num_lines
            ):
                self._abort("no_release", trigger=w)
        elif len(self.region_ops) > self.max_region:
            self._abort("no_release", trigger=w)

    # ------------------------------------------------------------------
    # Store-conditional interception
    # ------------------------------------------------------------------

    def consider_stcx(self, w: WinOp) -> str:
        """Decide the fate of a store-conditional: 'no' | 'elide'."""
        if self.mode is not Mode.IDLE:
            return "no"
        larx = self.idiom.match(w)
        if larx is None:
            return "no"
        self._m_candidates.inc()
        recipe = w.op.meta.get("sle_fallback")
        if recipe is None:
            return "no"
        if not self.confidence.should_attempt(w.op.pc):
            self._m_filtered.inc()
            return "no"
        self._begin(w, larx, recipe)
        return "elide"

    def _begin(self, w: WinOp, larx: WinOp, recipe: tuple) -> None:
        self.mode = Mode.SPECULATING
        self.lock_addr = w.op.addr
        self.lock_base = line_address(w.op.addr, self.config.line_size)
        self.free_value = larx.value
        self.held_value = w.op.value
        self.stcx_pc = w.op.pc
        self.fallback = recipe
        self.restarts = 0
        self._reset_region()
        self._m_attempts.inc()
        self._span = self.tracer.span_begin(
            "sle.region", node=self.core.core_id, base=self.lock_base,
            pc=self.stcx_pc,
        )
        self.tracer.emit(
            "sle.attempt", node=self.core.core_id, base=self.lock_base,
            pc=self.stcx_pc, span=self._span,
        )

    def _reset_region(self) -> None:
        self.region_ops = []
        self.read_set = {self.lock_base}
        self.write_set = set()
        self.release_w = None
        self.prefetch_outstanding = 0
        self._region_token = object()
        self._commit_token = None

    # ------------------------------------------------------------------
    # Exclusive prefetches for speculative stores
    # ------------------------------------------------------------------

    def _prefetch(self, addr: int) -> None:
        token = self._region_token
        self.prefetch_outstanding += 1

        def done() -> None:
            if token is self._region_token:
                self.prefetch_outstanding -= 1
                self._try_commit_region()

        latency = self.node.prefetch_exclusive(addr, done)
        if latency is not None:
            self.prefetch_outstanding -= 1

    # ------------------------------------------------------------------
    # Region commit
    # ------------------------------------------------------------------

    def on_op_completed(self, w: WinOp) -> None:
        """Region-commit check on each completion while active."""
        if self.mode is Mode.SPECULATING and self.release_w is not None:
            self._try_commit_region()

    def _try_commit_region(self) -> None:
        if (
            self.mode is not Mode.SPECULATING
            or self.release_w is None
            or self.prefetch_outstanding
        ):
            return
        if any(r.phase is not Phase.DONE for r in self.region_ops):
            return
        now = self.scheduler.now
        when = max([now, *(r.complete_time for r in self.region_ops)])
        token = object()
        self._commit_token = token
        self.scheduler.at(when, lambda: self._do_commit(token))

    def _do_commit(self, token: object) -> None:
        if self.mode is not Mode.SPECULATING or self._commit_token is not token:
            return
        for r in self.region_ops:
            if r.sle_buffered and r.op.kind is OpKind.STORE and r is not self.release_w:
                self.node.apply_store_now(r.op.addr, r.op.value, r.op.pc)
        self.confidence.on_success(self.stcx_pc)
        self._m_commits.inc()
        self.stats.add("elided_region_ops", len(self.region_ops))
        self.tracer.emit(
            "sle.commit", node=self.core.core_id, base=self.lock_base,
            ops=len(self.region_ops), span=self._span,
        )
        self.tracer.span_end(
            self._span, node=self.core.core_id, base=self.lock_base,
            outcome="commit", ops=len(self.region_ops),
        )
        self._span = None
        ops = self.region_ops
        self._leave()
        self.core.release_region_ops(ops)

    def _leave(self) -> None:
        self.mode = Mode.IDLE
        self.fallback = None
        self._reset_region()

    # ------------------------------------------------------------------
    # Aborts and fallback
    # ------------------------------------------------------------------

    def on_remote_txn(self, txn: BusTransaction) -> None:
        """Conflict detection against the speculative read/write sets."""
        if self.mode is not Mode.SPECULATING:
            return
        base = txn.base
        if txn.kind in (TxnKind.READX, TxnKind.UPGRADE):
            if base in self.read_set or base in self.write_set:
                self._abort("conflict", trigger=None)
        elif txn.kind is TxnKind.READ and base in self.write_set:
            self._abort("conflict", trigger=None)

    def on_local_line_invalidated(self, base: int) -> None:
        """Conflict check when our own line is invalidated."""
        if self.mode is not Mode.SPECULATING:
            return
        if base in self.read_set or base in self.write_set:
            self._abort("conflict", trigger=None)

    def on_squash(self, removed: list[WinOp], reason: str) -> None:
        """An externally-caused squash (LVP) removed window ops."""
        if self.mode is not Mode.SPECULATING or reason == "sle":
            return
        if any(r.sle_blocked for r in removed):
            # Part of the region was torn out from under us; the
            # replayed ops will be re-tracked, so rebuild region state.
            survivors = [r for r in self.region_ops if not r.dead]
            self.region_ops = survivors
            self.read_set = {self.lock_base} | {
                line_address(r.op.addr, self.config.line_size)
                for r in survivors
                if r.op.kind in (OpKind.LOAD, OpKind.LARX) and r.op.addr is not None
            }
            self.write_set = {
                line_address(r.op.addr, self.config.line_size)
                for r in survivors
                if r.op.kind is OpKind.STORE
            }
            if self.release_w is not None and self.release_w.dead:
                self.release_w = None
                self._commit_token = None

    def _abort(self, reason: str, trigger: WinOp | None) -> None:
        self._m_aborts[reason].inc()
        self.tracer.emit(
            "sle.abort", node=self.core.core_id, base=self.lock_base,
            reason=reason, restarts=self.restarts, span=self._span,
        )
        self.confidence.on_failure(self.stcx_pc, reason)
        checkpoint = self.config.sle.checkpoint_mode
        # Retired region stores cannot be squashed; they are re-applied
        # ("replayed") after the fallback acquisition, charging the
        # checkpoint-restore and re-execution time.
        retired_stores = [
            r for r in self.region_ops
            if checkpoint and r.retired and not r.dead
            and r.op.kind is OpKind.STORE and r is not self.release_w
        ]
        retired_count = sum(
            1 for r in self.region_ops if r.retired and not r.dead
        )
        target: WinOp | None = None
        for r in self.region_ops:
            if not r.dead and not r.retired:
                target = r
                break
        if target is None:
            target = trigger if (trigger is not None and not trigger.retired) else None
        resume = self.scheduler.now + self.config.core.squash_penalty
        if target is not None:
            self.core.squash_from(target, resume, "sle")
        retry = (
            not checkpoint
            and reason == "conflict"
            and self.restarts < self.config.sle.restart_limit
        )
        if retry:
            self.restarts += 1
            self._m_restarts.inc()
            self._reset_region()
            # Aborts can originate inside a bus snoop; make sure the
            # core re-fetches the replayed region.
            self.scheduler.after(0, self.core.pump)
            return
        fallback = self.fallback
        self._pending_stores = [(r.op.addr, r.op.value, r.op.pc) for r in retired_stores]
        self._reexec_charge = (
            self.config.sle.checkpoint_restore_penalty
            + retired_count // max(1, self.config.core.width)
            if checkpoint else 0
        )
        self.mode = Mode.ACQUIRING
        self._reset_region()
        self.core.stall_fetch(True)
        self._m_fallbacks.inc()
        self.tracer.emit(
            "sle.fallback", node=self.core.core_id, base=self.lock_base,
            span=self._span,
        )
        self.tracer.span_end(
            self._span, node=self.core.core_id, base=self.lock_base,
            outcome="fallback", reason=reason,
        )
        self._span = None
        self._acquire(fallback, attempt=0)

    def _acquire(self, fallback: tuple, attempt: int) -> None:
        kind = fallback[0]
        if kind == "add":
            self.node.atomic_add(self.lock_addr, fallback[1], lambda _v: self._acquired())
            return

        def cas_done(ok: bool) -> None:
            if ok:
                self._acquired()
            else:
                backoff = min(_BACKOFF_START * (1 << attempt), _BACKOFF_CAP)
                self.stats.add("fallback_retries")
                self.scheduler.after(
                    backoff, lambda: self._acquire(fallback, attempt + 1)
                )

        self.node.atomic_rmw(self.lock_addr, self.free_value, self.held_value, cas_done)

    def _acquired(self) -> None:
        # Checkpoint mode: "replay" the already-retired region stores
        # now that the lock is really held, then charge the restore and
        # re-execution time before fetch resumes.
        pending = list(self._pending_stores)
        charge = self._reexec_charge
        self._pending_stores = []
        self._reexec_charge = 0

        def finish() -> None:
            """Terminal fragment: emit the END block."""
            self._leave()
            self.core.stall_fetch(False)

        def after_applies() -> None:
            if charge:
                self.scheduler.after(charge, finish)
            else:
                finish()

        self._apply_stores(pending, after_applies)

    def _apply_stores(self, stores: list, done) -> None:
        """Apply (addr, value, pc) stores in order, asynchronously."""
        if not stores:
            done()
            return
        addr, value, pc = stores[0]
        rest = stores[1:]
        latency = self.node.store(
            addr, value, pc, lambda: self._apply_stores(rest, done)
        )
        if latency is not None:
            self.scheduler.after(latency, lambda: self._apply_stores(rest, done))
