"""Speculative Lock Elision (paper §4), in-core variant.

Elision idioms are detected from larx/stcx pairs; critical sections are
buffered inside the ROB (bounded by ``SLEConfig.rob_threshold``);
atomicity violations are detected by snooping the speculative read and
write sets; a per-PC confidence predictor with failure-mode-specific
hysteresis gates attempts (§4.2.3); isync-protected kernel critical
sections are handled by the context-safety check of §4.2.2.
"""

from repro.sle.confidence import ElisionConfidence
from repro.sle.engine import SLEEngine
from repro.sle.idiom import IdiomTracker

__all__ = ["ElisionConfidence", "SLEEngine", "IdiomTracker"]
