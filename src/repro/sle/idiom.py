"""Elision idiom detection (§4.1).

The trigger is the PowerPC pattern the paper describes: a load-locked
(larx) followed by a store-conditional (stcx) to the same address.  In
full-system code this idiom is *imprecise* — it also implements atomic
increments, list insertion, reservation clearing, and lock releases —
so a matched idiom is only a *candidate*; the confidence predictor and
the elision outcome decide its fate.
"""

from __future__ import annotations

from repro.cpu.core import Phase, WinOp
from repro.cpu.isa import OpKind


class IdiomTracker:
    """Remembers the most recent larx per core to match against stcx."""

    def __init__(self):
        self._last_larx: WinOp | None = None

    def note_larx(self, w: WinOp) -> None:
        """Record a fetched load-locked op."""
        if w.op.kind is OpKind.LARX:
            self._last_larx = w

    def match(self, stcx: WinOp) -> WinOp | None:
        """Return the matching larx for this stcx candidate, if usable.

        The larx must target the same address and have completed (so
        its observed value — the prospective "free" value the release
        must restore — is known).  Program block structure guarantees
        this: larx is a control op, so the stcx is fetched only after
        the larx committed.
        """
        larx = self._last_larx
        if larx is None or larx.dead:
            return None
        if larx.op.addr != stcx.op.addr:
            return None
        if larx.phase is not Phase.DONE or larx.value is None:
            return None
        return larx
