"""Elision confidence prediction (§4.2.3).

A per-static-instruction (PC-indexed) saturating confidence table with
*failure-mode-specific* hysteresis: idiom imprecision (no release
found) is punished hardest, data conflicts moderately (the region may
genuinely elide next time), serialization and buffering failures in
between.  When disabled (``confidence_enabled=False``) every candidate
attempts elision, reproducing the "simple restart threshold" of
Rajwar's thesis that the paper shows degrades commercial workloads by
5–10%.

Because commercial/kernel locking funnels many distinct critical
sections through few static instructions, the table deliberately has
no tag bits beyond the PC — the interference the paper describes
emerges naturally.
"""

from __future__ import annotations

from repro.common.config import SLEConfig
from repro.common.stats import ScopedStats

#: Failure reasons, in the order used throughout the package.
FAILURE_REASONS = ("no_release", "conflict", "serialize", "nested")


class ElisionConfidence:
    """PC-indexed saturating confidence for elision attempts."""

    def __init__(self, config: SLEConfig, stats: ScopedStats):
        self.config = config
        self._stats = stats
        self._table: dict[int, int] = {}
        self._top = (1 << config.confidence_bits) - 1
        self._decrements = {
            "no_release": config.no_release_decrement,
            "conflict": config.conflict_decrement,
            "serialize": config.serialize_decrement,
            "nested": config.serialize_decrement,
            "overflow": config.overflow_decrement,
        }

    def confidence(self, pc: int) -> int:
        """Current confidence for static instruction ``pc``."""
        return self._table.get(pc, self.config.initial_confidence)

    def should_attempt(self, pc: int) -> bool:
        """Gate an elision attempt (always True when prediction is off)."""
        if not self.config.confidence_enabled:
            return True
        return self.confidence(pc) >= self.config.attempt_threshold

    def on_success(self, pc: int) -> None:
        """A region committed: reinforce."""
        new = min(self._top, self.confidence(pc) + self.config.success_increment)
        self._table[pc] = new
        self._stats.add("confidence.success_updates")

    def on_failure(self, pc: int, reason: str) -> None:
        """A region aborted: decay by the failure mode's weight."""
        dec = self._decrements.get(reason, self.config.conflict_decrement)
        self._table[pc] = max(0, self.confidence(pc) - dec)
        self._stats.add(f"confidence.failure_updates.{reason}")
