"""Ablation benches for DESIGN.md's called-out design choices."""

import pytest

from repro.experiments.ablations import (
    silent_store_ablation,
    sle_predictor_ablation,
    sle_rob_threshold_ablation,
    validate_policy_ablation,
)

from benchmarks.conftest import BENCH_SCALE


def test_validate_policy_ablation_bench(benchmark):
    table = benchmark.pedantic(
        lambda: validate_policy_ablation(
            scale=BENCH_SCALE, seed=1, benchmarks=("specjbb",), verbose=False
        ),
        rounds=1, iterations=1,
    )
    print()
    print(table)
    assert "snoop_aware" in table and "predictor" in table


def test_sle_predictor_ablation_bench(benchmark):
    table = benchmark.pedantic(
        lambda: sle_predictor_ablation(
            scale=BENCH_SCALE, seed=1, benchmarks=("tpc-b",), verbose=False
        ),
        rounds=1, iterations=1,
    )
    print()
    print(table)
    assert "simple-threshold" in table


def test_sle_rob_threshold_ablation_bench(benchmark):
    table = benchmark.pedantic(
        lambda: sle_rob_threshold_ablation(
            scale=BENCH_SCALE, seed=1, benchmark="raytrace", verbose=False
        ),
        rounds=1, iterations=1,
    )
    print()
    print(table)
    assert "0.5" in table


def test_silent_store_ablation_bench(benchmark):
    table = benchmark.pedantic(
        lambda: silent_store_ablation(
            scale=BENCH_SCALE, seed=1, benchmarks=("ocean",), verbose=False
        ),
        rounds=1, iterations=1,
    )
    print()
    print(table)
    assert "ocean" in table
