"""§6 — directory-based MESTI/E-MESTI study."""

import pytest

from repro.analysis.report import render_table
from repro.experiments.directory_study import HEADERS, collect

from benchmarks.conftest import BENCH_SCALE


def test_directory_study_bench(benchmark):
    rows = benchmark.pedantic(
        lambda: collect(scale=BENCH_SCALE, seed=1, benchmarks=("tpc-b",),
                        verbose=False),
        rounds=1, iterations=1,
    )
    print()
    print(render_table(HEADERS, rows, title="Directory study (§6)"))

    by_kind = {row[1]: row for row in rows}
    assert set(by_kind) == {"bus", "directory"}
    # Validates keep working over the directory (multicast form).
    assert by_kind["directory"][4] > 0
    # E-MESTI still helps in both systems.
    assert by_kind["directory"][3] > 0.95
    assert by_kind["bus"][3] > 0.95
    # Directory indirection costs baseline latency.
    assert by_kind["directory"][2] > by_kind["bus"][2]
