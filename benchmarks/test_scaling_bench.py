"""§5.2 — 4/8-processor scaling study (the paper's abbreviated runs)."""

import pytest

from repro.analysis.report import render_table
from repro.experiments.scaling import HEADERS, collect

from benchmarks.conftest import BENCH_SCALE


def test_scaling_bench(benchmark):
    rows = benchmark.pedantic(
        lambda: collect(
            scale=BENCH_SCALE, seed=1, benchmarks=("tpc-b",),
            cpu_counts=(4, 8), verbose=False,
        ),
        rounds=1, iterations=1,
    )
    print()
    print(render_table(HEADERS, rows, title="Processor scaling (§5.2)"))

    by_cpus = {row[1]: row for row in rows}
    assert set(by_cpus) == {4, 8}
    # More processors, more communication misses for the same work.
    assert by_cpus[8][3] > by_cpus[4][3] * 0.8
    # E-MESTI keeps helping at 8 processors.
    assert by_cpus[8][4] > 0.95
