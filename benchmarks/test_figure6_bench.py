"""Figure 6 — stale-storage capacity sweep (explicit detection)."""

import pytest

from repro.experiments.figure6 import render, sweep

from benchmarks.conftest import BENCH_SCALE

BENCHMARKS = ("radiosity", "tpc-b")


def test_figure6_bench(benchmark):
    def regenerate():
        return sweep(scale=BENCH_SCALE, seed=1, benchmarks=BENCHMARKS, verbose=False)

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render(results))

    for bench in BENCHMARKS:
        per = results[bench]
        # More stale storage never hurts detection (fewer comm misses,
        # modulo small timing noise).
        assert per["4x stale (32KB)"] <= per["inclusive-only"] * 1.1, bench
        assert per["16x stale (128KB)"] <= per["4x stale (32KB)"] * 1.1, bench
        # The paper's conclusion: modest explicit storage lands close
        # to ideal detection (which is why later studies assume it).
        assert per["4x stale (32KB)"] <= per["ideal"] * 1.6 + 50, bench
