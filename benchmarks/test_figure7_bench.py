"""Figure 7 — per-technique speedups, regenerated at bench scale.

Checks the paper's qualitative results:

* E-MESTI never loses (robust), and beats plain MESTI where validates
  are useless (specjbb).
* Plain MESTI loses badly on specjbb.
* SLE wins clearly on raytrace (precise idiom, conservative lock).
* tpc-b is the most technique-sensitive workload.
"""

import pytest

from repro.experiments.figure7 import render, speedups
from repro.experiments.runner import MatrixRunner

from benchmarks.conftest import BENCH_SCALE, BENCH_SEEDS, BENCH_WORKERS

BENCHMARKS = ("raytrace", "specjbb", "tpc-b")
TECHNIQUES = ("mesti", "emesti", "lvp", "sle", "emesti+lvp")


def test_figure7_bench(benchmark, tmp_path):
    runner = MatrixRunner(
        scale=BENCH_SCALE, results_dir=tmp_path, label="f7", verbose=False,
        workers=BENCH_WORKERS,
    )

    def regenerate():
        if BENCH_WORKERS:
            runner.run_matrix(BENCHMARKS, ("base", *TECHNIQUES), BENCH_SEEDS)
        return speedups(
            runner, benchmarks=BENCHMARKS, techniques=TECHNIQUES, seeds=BENCH_SEEDS
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render(results))

    mean = lambda b, t: results[b][t].mean
    # Plain MESTI's useless validates hurt specjbb...
    assert mean("specjbb", "mesti") < 0.97
    # ...and the E-MESTI predictor recovers to ~baseline.
    assert mean("specjbb", "emesti") > mean("specjbb", "mesti")
    assert mean("specjbb", "emesti") > 0.95
    # SLE is the clear winner on raytrace.
    assert mean("raytrace", "sle") > 1.02
    assert mean("raytrace", "sle") > mean("raytrace", "lvp")
    # tpc-b benefits from producer-side elimination.
    assert mean("tpc-b", "emesti") > 0.97
