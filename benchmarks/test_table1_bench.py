"""Table 1 — simulated machine parameters.

Validates the verbatim Table 1 configuration and benchmarks system
construction (building the 4-processor machine with its caches,
controllers, and cores).
"""

from repro import System, get_benchmark, scaled_config, table1_config


def test_table1_construction_bench(benchmark):
    """Benchmark: build a full 4-processor system from Table 1 ratios."""

    def build():
        cfg = scaled_config()
        return System(cfg, get_benchmark("radiosity", scale=0.01), seed=1)

    system = benchmark(build)
    assert len(system.cores) == 4
    t1 = table1_config()
    benchmark.extra_info["table1"] = {
        "n_procs": t1.n_procs,
        "width": t1.core.width,
        "rob": t1.core.rob_size,
        "l2_mb": t1.l2.size_bytes // (1024 * 1024),
        "addr_latency": t1.bus.addr_latency,
        "data_latency": t1.bus.data_latency,
    }
    assert t1.core.rob_size == 256
    assert t1.bus.data_latency == 400
