"""Figure 4 predictor-tuning ablation: confidence parameter sweep."""

import dataclasses

import pytest

from repro.analysis.report import render_table
from repro.common.config import PredictorConfig, scaled_config
from repro.experiments.runner import summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark

from benchmarks.conftest import BENCH_SCALE

#: (initial, threshold, inc, dec, saturation) variants; the first is
#: the paper's 3-4-1-1-7, the second our scaled default (see
#: scaled_config's comment on migratory cold starts).
TUNINGS = (
    (3, 4, 1, 1, 7),
    (4, 4, 1, 1, 7),
    (2, 4, 1, 2, 7),
    (6, 4, 1, 1, 7),
)


def run_tuning(tuning, benchmark_name="tpc-b", seed=1):
    initial, threshold, inc, dec, sat = tuning
    cfg = configure_technique(scaled_config(), "emesti").with_protocol(
        predictor=PredictorConfig(
            initial_confidence=initial, threshold=threshold,
            increment=inc, decrement=dec, saturation=sat,
        )
    )
    workload = get_benchmark(benchmark_name, scale=BENCH_SCALE)
    return summarize(System(cfg, workload, seed=seed).run())


def test_predictor_tuning_bench(benchmark):
    def sweep():
        base = summarize(
            System(
                configure_technique(scaled_config(), "base"),
                get_benchmark("tpc-b", scale=BENCH_SCALE), seed=1,
            ).run()
        )
        rows = []
        for tuning in TUNINGS:
            s = run_tuning(tuning)
            rows.append([
                "-".join(map(str, tuning)),
                round(base["cycles"] / s["cycles"], 3),
                s["txn_validate"],
                s["validates_suppressed"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Tuning (init-thr-inc-dec-sat)", "Speedup", "Validates", "Suppressed"],
        rows, title="Ablation: useful-validate predictor tuning (tpc-b)",
    ))
    assert len(rows) == len(TUNINGS)
    # Every tuning still suppresses some validates and sends others.
    for row in rows:
        assert row[2] >= 0 and row[3] >= 0
