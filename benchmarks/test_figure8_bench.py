"""Figure 8 — address transactions normalized to baseline."""

import pytest

from repro.experiments.figure8 import render, transaction_breakdown
from repro.experiments.runner import MatrixRunner

from benchmarks.conftest import BENCH_SCALE, BENCH_SEEDS, BENCH_WORKERS

BENCHMARKS = ("specjbb", "tpc-b")
TECHNIQUES = ("base", "mesti", "emesti")


def test_figure8_bench(benchmark, tmp_path):
    runner = MatrixRunner(
        scale=BENCH_SCALE, results_dir=tmp_path, label="f8", verbose=False,
        workers=BENCH_WORKERS,
    )

    def regenerate():
        if BENCH_WORKERS:
            runner.run_matrix(BENCHMARKS, TECHNIQUES, BENCH_SEEDS)
        return transaction_breakdown(
            runner, benchmarks=BENCHMARKS, techniques=TECHNIQUES, seeds=BENCH_SEEDS
        )

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render(results))

    # The paper's §2.2 claim: unconditional validates add substantial
    # address traffic where sharing is wide or absent...
    assert results["specjbb"]["mesti"]["total"] > 1.3
    assert results["specjbb"]["mesti"]["validate"] > 0.1
    # ...and coherence prediction eliminates most of it.
    assert (
        results["specjbb"]["emesti"]["validate"]
        < results["specjbb"]["mesti"]["validate"] * 0.5
    )
    assert results["specjbb"]["emesti"]["total"] < results["specjbb"]["mesti"]["total"]
    # Baselines normalize to 1 by construction.
    for bench in BENCHMARKS:
        assert results[bench]["base"]["total"] == pytest.approx(1.0)
    # Validates never appear without a T-state protocol.
    for bench in BENCHMARKS:
        assert results[bench]["base"]["validate"] == 0
