"""§5.3.1 — SLE elision idiom statistics."""

import pytest

from repro.analysis.report import render_table
from repro.experiments.runner import MatrixRunner
from repro.experiments.sle_idioms import HEADERS, collect

from benchmarks.conftest import BENCH_SCALE, BENCH_SEEDS

BENCHMARKS = ("raytrace", "tpc-b", "specweb")


def test_sle_idiom_stats_bench(benchmark, tmp_path):
    runner = MatrixRunner(
        scale=BENCH_SCALE, results_dir=tmp_path, label="sle", verbose=False
    )

    def regenerate():
        return collect(runner, benchmarks=BENCHMARKS, seeds=BENCH_SEEDS)

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render_table(HEADERS, rows, title="SLE idiom statistics"))

    by_name = {row[0]: row for row in rows}
    # raytrace: precise user-level idiom, elisions succeed.
    rt = by_name["raytrace"]
    assert rt[2] > 0 and rt[4] > 0  # attempts, successes
    assert rt[5] > 60  # success/attempt %
    # Commercial workloads: the shared kernel PCs and the non-lock
    # larx/stcx uses (atomic increments) make the idiom imprecise —
    # the confidence predictor filters a large fraction of candidates
    # (the paper's "only ~25% of idioms attempt elision").
    for name in ("tpc-b", "specweb"):
        cand, att = by_name[name][1], by_name[name][2]
        assert cand > 0, name
        assert att < cand * 0.6, name
        # Failed attempts (idiom imprecision and/or conflicts) exist.
        no_release, conflict = by_name[name][6], by_name[name][7]
        assert no_release + conflict > 0, name
