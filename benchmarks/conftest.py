"""Benchmark-harness configuration.

Each ``benchmarks/test_*_bench.py`` module regenerates one table or
figure of the paper at a reduced scale (so the whole suite runs in
minutes) and prints the rendered rows through pytest-benchmark's
``extra_info``.  Absolute numbers shrink with the scale; the *shape*
(who wins, by roughly what factor) is what these reproduce.
"""

import pytest

#: Workload scale used across the benchmark suite (fraction of the
#: default experiment iteration counts).
BENCH_SCALE = 0.25
BENCH_SEEDS = (1,)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
