"""Benchmark-harness configuration.

Each ``benchmarks/test_*_bench.py`` module regenerates one table or
figure of the paper at a reduced scale (so the whole suite runs in
minutes) and prints the rendered rows through pytest-benchmark's
``extra_info``.  Absolute numbers shrink with the scale; the *shape*
(who wins, by roughly what factor) is what these reproduce.

Set ``REPRO_BENCH_WORKERS=N`` to fan the matrix-backed regenerations
out over N worker processes (the determinism contract guarantees
identical results, see docs/performance.md); unset or 0 runs serially.
"""

import os

import pytest

#: Workload scale used across the benchmark suite (fraction of the
#: default experiment iteration counts).
BENCH_SCALE = 0.25
BENCH_SEEDS = (1,)

#: Worker processes for matrix-backed regenerations (0/unset = serial).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_workers() -> int | None:
    return BENCH_WORKERS
