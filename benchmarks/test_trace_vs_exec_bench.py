"""§5.1.2 — trace-driven capturability vs execution-driven speedups."""

import pytest

from repro.analysis.report import render_table
from repro.experiments.trace_vs_exec import HEADERS, collect

from benchmarks.conftest import BENCH_SCALE


def test_trace_vs_exec_bench(benchmark):
    rows = benchmark.pedantic(
        lambda: collect(scale=BENCH_SCALE, seed=1, benchmarks=("tpc-b",),
                        verbose=False),
        rounds=1, iterations=1,
    )
    print()
    print(render_table(HEADERS, rows, title="Trace vs execution (§5.1.2)"))

    (_, comm, lvp_pct, mesti_pct, lvp_speedup, emesti_speedup) = rows[0]
    assert comm > 0
    # The paper's theoretical ordering: LVP covers the most misses...
    assert lvp_pct > mesti_pct
    assert lvp_pct > 30
    # ...yet the measured speedup does not follow the capture rate:
    # consumer-side speculation under-delivers relative to its
    # theoretical coverage (the §5.1.2 "trace-based analysis is
    # inconclusive" argument).
    assert lvp_speedup - 1.0 < (lvp_pct / 100) * 0.8
