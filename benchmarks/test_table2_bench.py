"""Table 2 — benchmark characteristics, regenerated at bench scale."""

import pytest

from repro.analysis.report import render_table
from repro.experiments.runner import MatrixRunner
from repro.experiments.table2 import HEADERS, collect
from repro.workloads.registry import BENCHMARKS

from benchmarks.conftest import BENCH_SCALE, BENCH_SEEDS


def test_table2_bench(benchmark, tmp_path):
    runner = MatrixRunner(
        scale=BENCH_SCALE, results_dir=tmp_path, label="t2", verbose=False
    )

    def regenerate():
        return collect(runner, seeds=BENCH_SEEDS)

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render_table(HEADERS, rows, title=f"Table 2 (scale={BENCH_SCALE})"))

    by_name = {row[0]: row for row in rows}
    assert set(by_name) == set(BENCHMARKS)
    for name, row in by_name.items():
        _, instr, uops, loads, stores, us, ts, ipc = row
        assert instr <= uops, name  # cracking expands instructions
        assert 0 < loads < uops and 0 < stores < uops, name
        assert 0 <= us <= stores, name
        assert ts >= 0, name
        assert ipc > 0, name
    # Qualitative Table 2 shape: scientific codes run at higher IPC
    # than the miss-bound commercial ones; specjbb is the lowest.
    sci_ipc = min(by_name[n][-1] for n in ("ocean", "raytrace"))
    assert sci_ipc > by_name["specjbb"][-1]
    # Update-silent stores are a visible fraction everywhere.
    for name in BENCHMARKS:
        stores, us = by_name[name][4], by_name[name][5]
        assert us / stores > 0.01, name
    # Temporally silent stores exist in every workload (lock pairs,
    # flag pulses).
    assert all(by_name[n][6] > 0 for n in BENCHMARKS)
