"""Setup shim for environments without the `wheel` package.

`pyproject.toml` is the canonical metadata; this file only enables
legacy `pip install -e .` / `setup.py develop` in offline environments
whose setuptools cannot build wheels.
"""

from setuptools import setup

setup()
