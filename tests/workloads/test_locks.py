"""Lock/barrier/atomic fragments: protocol-level behavior."""

import pytest

from repro.common.rng import SplitRng
from repro.cpu.isa import OpKind
from repro.cpu.program import BlockBuilder
from repro.workloads.locks import (
    FREE,
    BarrierSpace,
    acquire_lock,
    atomic_add,
    barrier_wait,
    release_lock,
)


@pytest.fixture
def b():
    return BlockBuilder()


@pytest.fixture
def rng():
    return SplitRng("locks")


LOCK = 0x7000


class TestAcquire:
    def test_acquires_when_free(self, b, rng):
        gen = acquire_lock(b, rng, LOCK, pc=0x10, held=3)
        block = gen.send(None)
        assert block[-1].kind is OpKind.LARX
        block = gen.send(FREE)  # lock observed free
        assert block[-1].kind is OpKind.STCX
        assert block[-1].op if False else block[-1].value == 3
        assert block[-1].meta["sle_fallback"] == ("cas",)
        with pytest.raises(StopIteration):
            gen.send(1)  # stcx succeeded: fragment done

    def test_spins_while_held(self, b, rng):
        gen = acquire_lock(b, rng, LOCK, pc=0x10)
        gen.send(None)
        block = gen.send(7)  # held by someone
        assert block[-1].kind is OpKind.LARX  # retry, no stcx
        # Backoff filler precedes the retry.
        assert any(op.kind is OpKind.ALU for op in block)

    def test_retries_on_stcx_failure(self, b, rng):
        gen = acquire_lock(b, rng, LOCK, pc=0x10)
        gen.send(None)
        gen.send(FREE)
        block = gen.send(0)  # stcx failed
        assert block[-1].kind is OpKind.LARX

    def test_kernel_acquire_appends_isync(self, b, rng):
        gen = acquire_lock(b, rng, LOCK, pc=0x10, kernel=True)
        gen.send(None)
        gen.send(FREE)
        with pytest.raises(StopIteration):
            gen.send(1)
        # The isync is left pending for the caller's CS block.
        assert b.pending == 1
        release_lock(b, LOCK)
        block = b.take()
        assert block[0].kind is OpKind.ISYNC
        assert block[-1].kind is OpKind.STORE and block[-1].value == FREE

    def test_release_is_sync_then_store(self, b):
        release_lock(b, LOCK, pc=5)
        block = b.take()
        assert [op.kind for op in block] == [OpKind.SYNC, OpKind.STORE]
        assert block[1].addr == LOCK and block[1].value == FREE


class TestAtomicAdd:
    def test_returns_observed_value(self, b, rng):
        gen = atomic_add(b, LOCK, pc=0x20, delta=4)
        block = gen.send(None)
        assert block[-1].kind is OpKind.LARX
        block = gen.send(10)
        stcx = block[-1]
        assert stcx.kind is OpKind.STCX and stcx.value == 14
        assert stcx.meta["sle_fallback"] == ("add", 4)
        with pytest.raises(StopIteration) as exc:
            gen.send(1)
        assert exc.value.value == 10  # the observed value

    def test_retries_until_success(self, b, rng):
        gen = atomic_add(b, LOCK, pc=0x20)
        gen.send(None)
        gen.send(5)
        block = gen.send(0)  # stcx failed: re-larx
        assert block[-1].kind is OpKind.LARX


class TestBarrier:
    def make(self, n):
        return BarrierSpace(
            lock_addr=0x8000, count_addr=0x8100, flag_addr=0x8180, n_threads=n
        )

    def test_last_arriver_flips(self, b, rng):
        bar = self.make(2)
        sense = {"sense": 0}
        gen = barrier_wait(b, rng, bar, sense, pc=0x30)
        gen.send(None)  # larx
        gen.send(FREE)  # stcx
        block = gen.send(1)  # stcx ok -> count load
        assert block[-1].addr == bar.count_addr and block[-1].control
        flip = gen.send(1)  # count+1 == 2: we are last -> flip block
        stores = [op for op in flip if op.kind is OpKind.STORE]
        assert any(op.addr == bar.flag_addr for op in stores)
        assert any(op.addr == bar.count_addr and op.value == 0 for op in stores)
        with pytest.raises(StopIteration):
            gen.send(None)  # flipper does not spin
        assert sense["sense"] == 1

    def test_early_arriver_spins_until_flag(self, b, rng):
        bar = self.make(4)
        sense = {"sense": 0}
        gen = barrier_wait(b, rng, bar, sense, pc=0x30)
        gen.send(None)
        gen.send(FREE)
        gen.send(1)
        block = gen.send(0)  # count 0: not last -> increment + release
        assert any(
            op.kind is OpKind.STORE and op.addr == bar.count_addr and op.value == 1
            for op in block
        )
        block = gen.send(None)  # spin iteration
        assert block[-1].addr == bar.flag_addr and block[-1].control
        block = gen.send(0)  # flag not flipped yet: keep spinning
        assert block[-1].addr == bar.flag_addr
        with pytest.raises(StopIteration):
            gen.send(1)  # flag == our sense target

    def test_sense_reverses_each_round(self, b, rng):
        bar = self.make(1)
        sense = {"sense": 0}
        for expected in (1, 0, 1):
            gen = barrier_wait(b, rng, bar, sense, pc=0x30)
            gen.send(None)
            gen.send(FREE)
            gen.send(1)
            gen.send(0)  # count+1 == 1: sole thread always flips
            with pytest.raises(StopIteration):
                gen.send(None)
            assert sense["sense"] == expected
