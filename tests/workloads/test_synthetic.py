"""The declarative synthetic-workload builder."""

import pytest

from repro.common.errors import ConfigError
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.synthetic import BEHAVIORS, SyntheticMix, SyntheticWorkload


def run_mix(config, mix, technique="base", seed=1):
    cfg = configure_technique(config, technique)
    return System(cfg, SyntheticWorkload(mix), seed=seed).run(
        max_cycles=30_000_000, max_events=10_000_000
    )


def test_unknown_behavior_rejected():
    with pytest.raises(ConfigError, match="unknown behaviors"):
        SyntheticWorkload(SyntheticMix(behaviors={"teleport": 1.0}))


def test_negative_weight_rejected():
    with pytest.raises(ConfigError):
        SyntheticWorkload(SyntheticMix(behaviors={"migratory": -1}))


def test_zero_iterations_rejected():
    with pytest.raises(ConfigError):
        SyntheticWorkload(SyntheticMix(iterations=0))


def test_runs_to_completion(tiny4_config):
    mix = SyntheticMix(iterations=10, behaviors={"migratory": 1.0})
    res = run_mix(tiny4_config, mix)
    assert res.committed > 100


def test_ts_flags_mix_feeds_mesti(tiny4_config):
    mix = SyntheticMix(
        iterations=25,
        behaviors={"ts_flags": 2.0, "read_shared": 1.0},
    )
    res = run_mix(tiny4_config, mix, technique="mesti")
    assert res.txn("validate") > 0


def test_false_share_mix_feeds_lvp(tiny4_config):
    mix = SyntheticMix(iterations=30, behaviors={"false_share": 2.0})
    res = run_mix(tiny4_config, mix, technique="lvp")
    assert res.node_sum("lvp.predictions") > 0


def test_atomic_mix_produces_exact_totals(tiny4_config):
    mix = SyntheticMix(
        iterations=12, private_ops=4, behaviors={"atomic": 1.0}
    )
    sys_cfg = configure_technique(tiny4_config, "emesti+lvp+sle")
    system = System(sys_cfg, SyntheticWorkload(mix), seed=3)
    system.run(max_cycles=30_000_000, max_events=10_000_000)
    # Every larx/stcx increment landed exactly once across both counters.
    workload = SyntheticWorkload(mix)
    from repro.common.rng import SplitRng

    layout = workload.build_layout(sys_cfg, SplitRng(3).split("workload").split("layout"))
    total = 0
    for addr in layout["counters"]:
        base = addr & ~63
        line = None
        for ctrl in system.controllers:
            cand = ctrl.lookup(base)
            if cand is not None and cand.state.dirty:
                line = cand
        value = line.data[0] if line is not None else system.memory.read_word(base, 0)
        total += value
    assert total > 0
    # Every increment landed exactly once: real stcx successes plus the
    # SLE fallback fetch-and-adds (an elided atomic always aborts to
    # fallback — no reverting store ever arrives).
    succ = sum(system.stats.get(f"node{i}.stcx.succeeded") for i in range(4))
    fallback_adds = sum(
        system.stats.get(f"sle{i}.fallback_acquisitions") for i in range(4)
    )
    assert total == succ + fallback_adds


def test_stream_mix_generates_capacity_misses(tiny4_config):
    mix = SyntheticMix(
        iterations=40, private_ops=0,
        behaviors={"stream": 2.0}, stream_lines=512,
    )
    res = run_mix(tiny4_config, mix)
    assert res.miss_class("capacity") + res.miss_class("cold") > 100


def test_behavior_catalog_is_complete():
    mix = SyntheticMix(behaviors={name: 0.1 for name in BEHAVIORS})
    SyntheticWorkload(mix)  # all advertised behaviors construct
