"""The seven benchmark models: construction, execution, and shape."""

import dataclasses

import pytest

from repro.common.rng import SplitRng
from repro.cpu.isa import OpKind
from repro.system.system import System
from repro.workloads.locks import KERNEL_ATOMIC_PC, KERNEL_LOCK_PC
from repro.workloads.registry import BENCHMARKS, COMMERCIAL, SCIENTIFIC, get_benchmark


def test_registry_contains_the_papers_seven():
    assert set(BENCHMARKS) == {
        "ocean", "radiosity", "raytrace", "specjbb", "specweb", "tpc-b", "tpc-h",
    }
    assert set(SCIENTIFIC) | set(COMMERCIAL) == set(BENCHMARKS)


def test_unknown_benchmark_rejected():
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        get_benchmark("linpack")


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_programs_build_per_processor(name, tiny4_config):
    wl = get_benchmark(name, scale=0.02)
    programs = wl.build_programs(tiny4_config, SplitRng(0))
    assert len(programs) == 4
    block = programs[0].next_block(None)
    assert block and len(block) >= 1


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_benchmark_runs_to_completion(name, tiny4_config):
    wl = get_benchmark(name, scale=0.02)
    res = System(tiny4_config, wl, seed=3).run(
        max_cycles=30_000_000, max_events=10_000_000
    )
    assert res.committed > 100
    assert res.cycles > 0


def _op_census(name, config, iterations=3):
    """Statically walk one thread's program, answering control values
    that keep it moving (locks acquired, flags set)."""
    wl = get_benchmark(name, iterations=iterations)
    program = wl.build_programs(config, SplitRng(0))[0]
    census = {"kernel_pc_synch": 0, "larx": 0, "stcx": 0, "isync": 0, "ops": 0}
    value = None
    pending_larx = False
    for _ in range(20_000):
        block = program.next_block(value)
        if block is None:
            break
        value = None
        for op in block:
            census["ops"] += 1
            if op.kind is OpKind.LARX:
                census["larx"] += 1
                pending_larx = True
                if op.pc in (KERNEL_LOCK_PC, KERNEL_ATOMIC_PC):
                    census["kernel_pc_synch"] += 1
                value = 0  # lock always observed free
            elif op.kind is OpKind.STCX:
                census["stcx"] += 1
                value = 1  # stcx always succeeds
                pending_larx = False
            elif op.kind is OpKind.ISYNC:
                census["isync"] += 1
            elif op.control:
                value = 1  # flags/counters read as "proceed"
    return census


def test_commercial_synchronization_uses_shared_kernel_pcs(tiny4_config):
    census = _op_census("tpc-b", tiny4_config)
    assert census["kernel_pc_synch"] > 0
    assert census["isync"] > 0  # kernel locks carry isync (§4.2.2)


def test_scientific_locking_is_user_level(tiny4_config):
    census = _op_census("radiosity", tiny4_config)
    assert census["kernel_pc_synch"] == 0
    assert census["larx"] > 0


def test_scale_controls_work(tiny4_config):
    small = _op_census("radiosity", tiny4_config, iterations=2)["ops"]
    large = _op_census("radiosity", tiny4_config, iterations=8)["ops"]
    assert large > small * 2


def test_specjbb_footprint_exceeds_l2(experiment_config):
    from repro.workloads.specjbb import SpecjbbWorkload

    wl = SpecjbbWorkload()
    layout = wl.build_layout(experiment_config, SplitRng(0))
    heap_bytes = layout.heaps[0].size_bytes
    assert heap_bytes > experiment_config.l2.size_bytes


def test_benchmarks_have_distinct_cracking_ratios():
    ratios = {cls.cracking_ratio for cls in BENCHMARKS.values()}
    assert len(ratios) >= 5  # calibrated per benchmark from Table 2
