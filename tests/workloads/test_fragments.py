"""Workload fragments: op-stream shape of each sharing archetype."""

import pytest

from repro.common.rng import SplitRng
from repro.cpu.isa import OpKind
from repro.cpu.program import BlockBuilder
from repro.workloads.fragments import (
    compute_chain,
    conservative_cs,
    dependent_walk,
    false_share_update,
    kernel_section,
    migratory_update,
    private_work,
    read_shared,
    stream_walk,
    ts_flag_pulse,
)
from repro.workloads.regions import Region


@pytest.fixture
def b():
    return BlockBuilder()


@pytest.fixture
def rng():
    return SplitRng("frag-test")


REGION = Region("r", 0x10000, 16)


def drain(gen, answers=None):
    """Drive a fragment, answering control ops from ``answers``."""
    answers = list(answers or [])
    ops = []
    value = None
    try:
        block = gen.send(None)
        while True:
            ops.extend(block)
            value = answers.pop(0) if (block and block[-1].control) else None
            block = gen.send(value)
    except StopIteration:
        return ops


def test_private_work_mix(b, rng):
    ops = drain(private_work(b, rng, REGION, 40, us_prob=1.0))
    kinds = [op.kind for op in ops]
    assert OpKind.LOAD in kinds and OpKind.STORE in kinds and OpKind.ALU in kinds
    # us_prob=1: every store is followed by its silent duplicate.
    stores = [op for op in ops if op.kind is OpKind.STORE]
    assert len(stores) % 2 == 0
    for first, second in zip(stores[::2], stores[1::2]):
        assert first.addr == second.addr and first.value == second.value


def test_private_work_stays_in_region(b, rng):
    ops = drain(private_work(b, rng, REGION, 60))
    for op in ops:
        if op.addr is not None:
            assert REGION.base <= op.addr < REGION.end


def test_stream_walk_line_stride_and_cursor(b, rng):
    state = {}
    ops1 = drain(stream_walk(b, state, REGION, 8, write_frac=0.0, rng=rng))
    bases1 = [op.addr & ~63 for op in ops1 if op.addr is not None]
    assert len(set(bases1)) == 8  # one new line per access
    ops2 = drain(stream_walk(b, state, REGION, 4, write_frac=0.0, rng=rng))
    bases2 = [op.addr & ~63 for op in ops2 if op.addr is not None]
    assert bases2[0] != bases1[0]  # cursor persisted


def test_ts_flag_pulse_is_reverting_pair(b):
    ops = drain(ts_flag_pulse(b, REGION.word(0, 0), work_ops=3, busy_value=5))
    stores = [op for op in ops if op.kind is OpKind.STORE]
    assert [s.value for s in stores] == [5, 0]
    assert stores[0].addr == stores[1].addr


def test_false_share_writes_only_own_word(b, rng):
    ops = drain(false_share_update(b, rng, REGION, tid=2, n_ops=6))
    for op in ops:
        if op.kind is OpKind.STORE:
            assert (op.addr & 63) // 8 == 2


def test_dependent_walk_chains_addresses(b, rng):
    ops = drain(dependent_walk(b, rng, [(REGION, 0), (REGION, None), (REGION, None)]))
    loads = [op for op in ops if op.kind is OpKind.LOAD]
    assert len(loads) == 3
    assert loads[0].sregs == ()
    assert loads[1].sregs == (loads[0].dreg,)
    assert loads[2].sregs == (loads[1].dreg,)


def test_compute_chain_is_serial(b):
    ops = drain(compute_chain(b, 10, latency=4))
    alus = [op for op in ops if op.kind is OpKind.ALU]
    assert len(alus) == 10
    for prev, cur in zip(alus, alus[1:]):
        assert cur.sregs == (prev.dreg,)
        assert cur.latency == 4


def test_migratory_update_is_locked_rmw(b, rng):
    lock = 0x9000
    ops = drain(
        migratory_update(b, rng, lock, REGION, tid=1, pc=0x50, n_words=2),
        answers=[0, 1],  # larx sees free, stcx succeeds
    )
    kinds = [op.kind for op in ops]
    assert kinds.count(OpKind.LARX) == 1
    assert kinds.count(OpKind.STCX) == 1
    # Release restores the free value.
    release = [op for op in ops if op.kind is OpKind.STORE and op.addr == lock]
    assert release and release[-1].value == 0
    # CS is straight-line: no control ops between stcx and release.
    stcx_i = kinds.index(OpKind.STCX)
    for op in ops[stcx_i + 1:]:
        assert not op.control


def test_conservative_cs_touches_own_slab_only(b, rng):
    slabs = Region("slabs", 0x20000, 16)
    ops = drain(
        conservative_cs(b, rng, 0x9000, slabs, tid=1, n_threads=4, pc=0x60, n_ops=8),
        answers=[0, 1],
    )
    lines_per_thread = slabs.lines // 4
    for op in ops:
        if op.addr is not None and slabs.base <= op.addr < slabs.end:
            line_index = (op.addr - slabs.base) // 64
            assert lines_per_thread <= line_index < 2 * lines_per_thread


def test_kernel_section_carries_isync_and_shared_pc(b, rng):
    from repro.workloads.locks import KERNEL_LOCK_PC

    ops = drain(
        kernel_section(b, rng, 0x9000, REGION, KERNEL_LOCK_PC, tid=0),
        answers=[0, 1],
    )
    kinds = [op.kind for op in ops]
    assert OpKind.ISYNC in kinds
    larx = next(op for op in ops if op.kind is OpKind.LARX)
    assert larx.pc == KERNEL_LOCK_PC


def test_read_shared_only_loads(b, rng):
    ops = drain(read_shared(b, rng, REGION, 5))
    assert all(op.kind is OpKind.LOAD for op in ops)
