"""Behavioral signatures: each benchmark exercises the miss classes and
silence sources its paper counterpart is known for."""

import pytest

from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def profiles(tmp_path_factory):
    """Baseline-run summaries for all seven benchmarks (small scale)."""
    from repro.common.config import scaled_config
    from repro.experiments.runner import summarize

    out = {}
    for name in (
        "ocean", "radiosity", "raytrace", "specjbb", "specweb", "tpc-b", "tpc-h",
    ):
        cfg = configure_technique(scaled_config(), "base")
        result = System(cfg, get_benchmark(name, scale=0.25), seed=1).run(
            max_cycles=200_000_000, max_events=100_000_000
        )
        out[name] = summarize(result)
    return out


def comm_fraction(p):
    return p["miss_comm"] / max(1, p["miss_total"])


def capacityish_fraction(p):
    return (p["miss_capacity"] + p["miss_cold"]) / max(1, p["miss_total"])


def test_specjbb_is_capacity_dominated(profiles):
    p = profiles["specjbb"]
    assert capacityish_fraction(p) > 0.9
    assert comm_fraction(p) < 0.1


def test_tpcb_is_communication_heavy(profiles):
    p = profiles["tpc-b"]
    assert comm_fraction(p) > 0.5


def test_tpcb_has_highest_comm_intensity(profiles):
    """Misses per committed op: tpc-b leads the pack (§5.3)."""
    intensity = {
        name: p["miss_comm"] / p["committed"] for name, p in profiles.items()
    }
    assert intensity["tpc-b"] == max(intensity.values())


def test_commercial_false_sharing_fraction_in_band(profiles):
    """The paper: false sharing is 20-30% of comm misses in commercial
    workloads, 10-20% in scientific (with the parameters of Table 1)."""
    for name in ("tpc-b", "specweb"):
        p = profiles[name]
        frac = p["miss_comm_false"] / max(1, p["miss_comm"])
        assert 0.1 < frac < 0.6, (name, frac)


def test_tss_present_in_comm_misses(profiles):
    for name in ("tpc-b", "radiosity", "specweb"):
        p = profiles[name]
        assert p["miss_comm_tss"] > 0, name


def test_scientific_low_miss_rates(profiles):
    """Scientific codes miss far less per op than OLTP (§5.3: 'many
    times an order of magnitude')."""
    sci = profiles["ocean"]["miss_total"] / profiles["ocean"]["committed"]
    oltp = profiles["tpc-b"]["miss_total"] / profiles["tpc-b"]["committed"]
    assert oltp > 3 * sci


def test_everyone_commits_synchronization(profiles):
    for name, p in profiles.items():
        assert p["larx"] > 0 and p["stcx"] > 0, name


def test_stream_benchmarks_have_largest_miss_volume(profiles):
    """Streaming footprints dominate absolute miss counts."""
    misses = {n: p["miss_total"] for n, p in profiles.items()}
    top_two = sorted(misses, key=misses.get, reverse=True)[:3]
    assert "specjbb" in top_two or "tpc-h" in top_two


def test_us_store_rates_in_band(profiles):
    for name, p in profiles.items():
        stores = p["stores"] + p["stcx"]
        rate = p["us_stores"] / max(1, stores)
        assert 0.005 < rate < 0.5, (name, rate)


def test_ts_stores_everywhere(profiles):
    for name, p in profiles.items():
        assert p["ts_stores"] > 0, name
