"""Region allocator."""

import pytest

from repro.workloads.regions import Region, RegionAllocator


def test_alloc_line_aligned_and_disjoint():
    alloc = RegionAllocator()
    a = alloc.alloc("a", 4)
    b = alloc.alloc("b", 2)
    assert a.base % 64 == 0 and b.base % 64 == 0
    assert a.end <= b.base  # guard gap keeps them apart
    assert b.base - a.end >= 64


def test_duplicate_name_rejected():
    alloc = RegionAllocator()
    alloc.alloc("x", 1)
    with pytest.raises(ValueError):
        alloc.alloc("x", 1)


def test_zero_lines_rejected():
    with pytest.raises(ValueError):
        RegionAllocator().alloc("x", 0)


def test_region_addressing():
    r = Region("r", 0x1000, 4)
    assert r.line(0) == 0x1000
    assert r.line(1) == 0x1040
    assert r.line(4) == 0x1000  # wraps
    assert r.word(0, 0) == 0x1000
    assert r.word(0, 7) == 0x1038
    assert r.word(0, 8) == 0x1000  # word wraps
    assert r.size_bytes == 256


def test_lock_line_is_one_padded_line():
    alloc = RegionAllocator()
    lock = alloc.lock_line("l")
    other = alloc.alloc("d", 1)
    assert lock % 64 == 0
    assert other.base - lock >= 128  # own line + guard


def test_registry_tracks_regions():
    alloc = RegionAllocator()
    alloc.alloc("a", 1)
    alloc.alloc("b", 2)
    assert set(alloc.regions) == {"a", "b"}
