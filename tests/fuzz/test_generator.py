"""Generator, oracle, minimizer, and mutator unit contracts."""

from __future__ import annotations

from repro.common.rng import SplitRng
from repro.fuzz.generator import (
    MAX_NODES,
    MAX_OPS_PER_NODE,
    generate_test,
    make_schedule,
    retarget,
)
from repro.fuzz.minimize import minimize_test
from repro.fuzz.mutator import (
    apply_descriptor,
    descriptor_name,
    random_descriptor,
    seeded_plan,
)
from repro.fuzz.oracle import derive_allowed, enumerate_outcomes
from repro.verify.model import ProtocolSpec
from repro.verify.mutations import MUTATIONS


def rng(seed=0, name="test"):
    return SplitRng(seed).split(name)


class TestGenerator:
    def test_deterministic_per_stream(self):
        a = generate_test(rng(5), 0)
        b = generate_test(rng(5), 0)
        assert a.programs == b.programs
        assert (a.n_lines, a.n_words) == (b.n_lines, b.n_words)

    def test_respects_size_bounds(self):
        for i in range(20):
            test = generate_test(rng(i, f"iter/{i}"), i)
            assert 2 <= len(test.programs) <= MAX_NODES
            assert all(
                len(p) <= MAX_OPS_PER_NODE for p in test.programs
            )

    def test_always_observable(self):
        # The oracle compares final loads; a test with no load (or no
        # store) could never distinguish protocols.
        for i in range(20):
            test = generate_test(rng(i, f"iter/{i}"), i)
            ops = [op[0] for p in test.programs for op in p]
            assert "load" in ops and "store" in ops

    def test_schedule_covers_every_op(self):
        test = generate_test(rng(3), 0)
        schedule, decisions = make_schedule(rng(3, "sched"), test)
        op_count = sum(len(p) for p in test.programs)
        assert sum(1 for e in schedule if e[0] == "op") == op_count
        assert len(decisions) > 0
        assert all(d in ("validate", "quiet") for d in decisions)

    def test_retarget_recomputes_observed(self):
        test = generate_test(rng(9), 0)
        smaller = retarget(test, [[("load", 0, 0)], [("store", 0, 0, 1)]])
        assert len(smaller.programs) == 2
        assert smaller.name == test.name


class TestOracle:
    def test_reference_enumeration_is_complete_and_clean(self):
        test = generate_test(rng(1), 0)
        allowed, reference = derive_allowed(test, "bus")
        assert reference.ok and reference.complete
        assert allowed, "at least one outcome is always reachable"

    def test_protocols_agree_with_reference_oracle(self):
        # The data-value invariant: MESTI/E-MESTI reach exactly the
        # MESI outcomes on any workload.
        test = generate_test(rng(2), 0)
        allowed, _ = derive_allowed(test, "bus")
        for protocol in ("mesti", "emesti"):
            result = enumerate_outcomes(ProtocolSpec(protocol), test, "bus")
            assert result.ok, result.violation
            assert frozenset(result.outcomes) == allowed

    def test_outcomes_carry_shortest_witness(self):
        test = generate_test(rng(4), 0)
        result = enumerate_outcomes(ProtocolSpec("mesi"), test, "bus")
        for outcome, trace in result.outcomes.items():
            assert len(trace) <= sum(len(p) for p in test.programs)


class TestMinimizer:
    def test_minimizes_to_smallest_reproducer(self):
        test = generate_test(rng(6), 0)
        # "Reproduces" = still contains a store.  The floor is 2 ops:
        # retarget re-adds one load when none survive (every test must
        # observe something), so store + observer load remain.
        def has_store(t):
            return any(op[0] == "store" for p in t.programs for op in p)

        minimized, used = minimize_test(test, has_store, attempts=512)
        assert has_store(minimized)
        ops = sum(len(p) for p in minimized.programs)
        assert ops == 2
        assert len(minimized.programs) >= 2
        assert used >= 1

    def test_irreducible_input_returned_unchanged(self):
        test = generate_test(rng(7), 0)
        minimized, _used = minimize_test(test, lambda t: False)
        assert minimized.programs == test.programs


class TestMutator:
    def test_seeded_plan_covers_all_verify_mutations(self):
        names = [d[1] for _proto, d in seeded_plan()]
        assert names == sorted(MUTATIONS)

    def test_apply_descriptor_leaves_spec_pristine(self):
        spec = ProtocolSpec("mesti")
        before = spec.make_logic()
        mutated = apply_descriptor(spec, ("post-validate", "M"))
        assert mutated is not before
        # A fresh logic from the same spec is unaffected by the patch.
        fresh = spec.make_logic()
        assert fresh.post_validate_state() == before.post_validate_state()
        assert mutated.post_validate_state().value == "M"

    def test_random_descriptors_deterministic_and_named(self):
        spec = ProtocolSpec("emesti")
        a = random_descriptor(rng(11), spec)
        b = random_descriptor(rng(11), spec)
        assert a == b
        assert descriptor_name(a)
        # Descriptors must be picklable plain tuples for the worker
        # pool path.
        import pickle

        pickle.loads(pickle.dumps(a))

    def test_temporal_shapes_not_offered_on_plain_protocols(self):
        spec = ProtocolSpec("mesi")
        for i in range(30):
            descriptor = random_descriptor(rng(i, f"d/{i}"), spec)
            assert descriptor[0] not in ("post-validate", "revalidated")
