"""Campaign-level contracts: determinism, canaries, clean runs.

The fuzz campaign is only trustworthy if it is *reproducible* — the
JSON report is a pure function of (seed, budget, protocols,
interconnect), independent of worker count — and *sensitive* — a small
budget rediscovers every seeded mutation from
:mod:`repro.verify.mutations`.  Both properties are cheap to check
with tiny budgets because every 4th iteration is a mutation slot and
the seeded plan is walked first.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.campaign import (
    MUTATION_STRIDE,
    FuzzOptions,
    run_campaign,
    run_fuzz_cell,
)
from repro.verify.mutations import MUTATIONS

# Enough iterations for one mutation slot per seeded mutation
# (slots fall at indices MUTATION_STRIDE-1, 2*MUTATION_STRIDE-1, ...).
CANARY_BUDGET = MUTATION_STRIDE * len(MUTATIONS)


def report(seed=1, budget=CANARY_BUDGET, **kw) -> dict:
    return run_campaign(FuzzOptions(seed=seed, budget=budget, **kw)).to_json()


class TestDeterminism:
    def test_same_seed_same_report(self):
        assert report(seed=3) == report(seed=3)

    def test_different_seeds_differ(self):
        # Not a hard guarantee for any pair, but these two diverge;
        # if they ever collide the RNG split is broken.
        a, b = report(seed=1), report(seed=2)
        assert a["corpus"] != b["corpus"]

    def test_workers_do_not_change_the_report(self):
        # The batch-synchronous merge makes the parallel campaign
        # byte-identical to the serial one — corpus admission order,
        # findings, mutation records, everything.
        serial = report(seed=7, budget=16, workers=0)
        parallel = report(seed=7, budget=16, workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_report_is_json_serializable(self):
        doc = report(seed=4, budget=8)
        assert json.loads(json.dumps(doc)) == doc


class TestSeededCanary:
    def test_small_budget_rediscovers_every_seeded_mutation(self):
        doc = report(seed=1)
        mut = doc["mutations"]
        assert mut["seeded_total"] == len(MUTATIONS)
        assert mut["seeded_detected"] == sorted(MUTATIONS)

    def test_mutation_records_carry_coverage_feedback(self):
        doc = report(seed=1)
        for record in doc["mutations"]["records"]:
            assert record["rows_reached"] > 0
            if record["seeded"]:
                assert record["detected"], record
                assert record["caught_as"], record
                assert record["trace_len"] >= 1


class TestCleanRun:
    def test_clean_campaign_reports_no_findings(self):
        doc = report(seed=1)
        assert doc["ok"] is True
        assert doc["findings"] == []

    def test_report_shape(self):
        doc = report(seed=2, budget=8)
        for key in ("fuzz", "seed", "budget", "protocols", "interconnect",
                    "ok", "rows_covered", "corpus_size", "corpus",
                    "findings", "mutations"):
            assert key in doc, key
        assert doc["fuzz"] is True
        assert doc["rows_covered"] > 0
        assert doc["corpus_size"] == len(doc["corpus"])
        # Every corpus entry earned its place with fresh coverage.
        for entry in doc["corpus"]:
            assert entry["new_rows"]

    def test_corpus_entries_replayable(self):
        # Entries must carry everything needed to re-run the input.
        doc = report(seed=2, budget=8)
        generated = [e for e in doc["corpus"] if e.get("programs")]
        assert generated, "a small campaign still admits generated tests"
        for entry in generated:
            assert entry["n_lines"] >= 1 and entry["n_words"] >= 1
            assert entry["schedule"]
            assert len(entry["decisions"]) > 0


class TestServiceCell:
    def test_run_fuzz_cell_matches_serial_campaign(self):
        doc = run_fuzz_cell(5, 8, ("mesi", "mesti"), "bus")
        assert doc == report(seed=5, budget=8,
                             protocols=("mesi", "mesti"))


class TestOptions:
    def test_options_frozen_and_hashable(self):
        opts = FuzzOptions(seed=1)
        with pytest.raises(AttributeError):
            opts.seed = 2  # type: ignore[misc]
        hash(opts)
