"""The ``repro-sim fuzz`` surface: exit codes, formats, report file."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

FAST = ["fuzz", "--seed", "1", "--budget", "8"]


def test_clean_campaign_exits_zero(capsys):
    assert main(FAST) == 0
    out = capsys.readouterr().out
    assert "result: CLEAN" in out


def test_json_format_is_the_report_document(capsys):
    assert main(FAST + ["--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["fuzz"] is True
    assert doc["ok"] is True
    assert doc["seed"] == 1 and doc["budget"] == 8


def test_output_file_written(tmp_path, capsys):
    path = tmp_path / "fuzz.json"
    assert main(FAST + ["--output", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["ok"] is True
    # Text summary still goes to stdout.
    assert "result: CLEAN" in capsys.readouterr().out


def test_zero_budget_exits_two(capsys):
    assert main(["fuzz", "--budget", "0"]) == 2
    assert "error" in capsys.readouterr().err


def test_negative_workers_exits_two(capsys):
    assert main(["fuzz", "--workers", "-1"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_protocol_exits_two():
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["fuzz", "--protocols", "mosi"])
    assert exc.value.code == 2


def test_duplicate_protocols_deduped(capsys):
    assert main(FAST + ["--protocols", "mesi", "mesi", "mesti",
                        "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["protocols"] == ["mesi", "mesti"]
