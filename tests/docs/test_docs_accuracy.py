"""Documentation accuracy: code snippets and referenced names exist."""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"
ROOT = DOCS.parent


def test_doc_files_exist():
    for name in ("protocols.md", "core_model.md", "workloads.md", "api.md"):
        assert (DOCS / name).is_file(), name


def test_readme_referenced_commands_exist():
    readme = (ROOT / "README.md").read_text()
    for module in re.findall(r"python -m (repro\.experiments\.\w+)", readme):
        import importlib

        mod = importlib.import_module(module)
        assert hasattr(mod, "run"), module
    for example in re.findall(r"python (examples/\w+\.py)", readme):
        assert (ROOT / example).is_file(), example


def test_api_md_snippets_import():
    """Every `from x import y` line in docs/api.md must resolve."""
    import importlib

    text = (DOCS / "api.md").read_text()
    for match in re.finditer(r"^from (repro[\w.]*) import (.+)$", text, re.M):
        module = importlib.import_module(match.group(1))
        for name in match.group(2).split(","):
            name = name.strip().rstrip("(")
            if name:
                assert hasattr(module, name), f"{match.group(1)}.{name}"


def test_design_md_module_map_is_real():
    import importlib

    design = (ROOT / "DESIGN.md").read_text()
    block = design.split("src/repro/", 1)[1].split("```", 1)[0]
    for line in block.splitlines():
        m = re.match(r"\s*(\w+)/\{([\w,]+)\}\.py", line)
        if not m:
            continue
        package, modules = m.group(1), m.group(2).split(",")
        for module in modules:
            importlib.import_module(f"repro.{package}.{module}")


def test_experiments_md_references_real_commands():
    import importlib

    text = (ROOT / "EXPERIMENTS.md").read_text()
    for module in set(re.findall(r"python -m (repro\.experiments\.\w+)", text)):
        assert hasattr(importlib.import_module(module), "run"), module
