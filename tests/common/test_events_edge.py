"""Scheduler edge cases beyond the basics."""

import pytest

from repro.common.events import Scheduler


def test_event_scheduled_during_event_fires_same_time():
    sched = Scheduler()
    order = []

    def outer():
        order.append("outer")
        sched.at(sched.now, lambda: order.append("inner"))

    sched.at(5, outer)
    sched.run()
    assert order == ["outer", "inner"]


def test_interleaved_times_stable():
    sched = Scheduler()
    order = []
    sched.at(10, lambda: order.append("a10"))
    sched.at(5, lambda: order.append("b5"))
    sched.at(10, lambda: order.append("c10"))
    sched.at(5, lambda: order.append("d5"))
    sched.run()
    assert order == ["b5", "d5", "a10", "c10"]


def test_now_advances_monotonically():
    sched = Scheduler()
    seen = []
    for t in (3, 1, 2):
        sched.at(t, lambda: seen.append(sched.now))
    sched.run()
    assert seen == sorted(seen) == [1, 2, 3]


def test_pending_counts():
    sched = Scheduler()
    sched.at(1, lambda: None)
    sched.at(2, lambda: None)
    assert sched.pending() == 2
    sched.step()
    assert sched.pending() == 1


def test_exception_in_callback_propagates():
    sched = Scheduler()

    def boom():
        raise RuntimeError("boom")

    sched.at(1, boom)
    with pytest.raises(RuntimeError):
        sched.run()
