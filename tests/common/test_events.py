"""Discrete-event scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.common.events import Scheduler


def test_events_fire_in_time_order():
    sched = Scheduler()
    order = []
    sched.at(10, lambda: order.append("b"))
    sched.at(5, lambda: order.append("a"))
    sched.at(20, lambda: order.append("c"))
    sched.run()
    assert order == ["a", "b", "c"]
    assert sched.now == 20


def test_same_time_events_fire_in_insertion_order():
    sched = Scheduler()
    order = []
    for i in range(5):
        sched.at(7, lambda i=i: order.append(i))
    sched.run()
    assert order == [0, 1, 2, 3, 4]


def test_after_is_relative_to_now():
    sched = Scheduler()
    times = []
    sched.at(10, lambda: sched.after(5, lambda: times.append(sched.now)))
    sched.run()
    assert times == [15]


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    sched.at(10, lambda: None)
    sched.run()
    with pytest.raises(SimulationError):
        sched.at(5, lambda: None)


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(SimulationError):
        sched.after(-1, lambda: None)


def test_until_condition_stops_run():
    sched = Scheduler()
    fired = []
    for t in (1, 2, 3, 4):
        sched.at(t, lambda t=t: fired.append(t))
    sched.run(until=lambda: len(fired) >= 2)
    assert fired == [1, 2]
    assert sched.pending() == 2


def test_max_cycles_guard():
    sched = Scheduler()

    def reschedule():
        sched.after(10, reschedule)

    sched.after(0, reschedule)
    with pytest.raises(SimulationError, match="max_cycles"):
        sched.run(max_cycles=100)


def test_max_events_guard():
    sched = Scheduler()

    def reschedule():
        sched.after(0, reschedule)

    sched.after(0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        sched.run(max_events=50)


def test_events_fired_counts():
    sched = Scheduler()
    for t in range(5):
        sched.at(t, lambda: None)
    sched.run()
    assert sched.events_fired == 5


def test_step_returns_false_when_empty():
    assert Scheduler().step() is False


# -- stop-condition boundary semantics ------------------------------------


def test_until_true_before_first_event():
    sched = Scheduler()
    fired = []
    sched.at(1, lambda: fired.append(1))
    sched.run(until=lambda: True)
    assert fired == []
    assert sched.pending() == 1


def test_max_cycles_event_exactly_at_limit_fires():
    sched = Scheduler()
    fired = []
    sched.at(100, lambda: fired.append(sched.now))
    sched.run(max_cycles=100)  # at the limit is not past it
    assert fired == [100]


def test_max_cycles_final_event_past_limit_drains():
    # The guard is checked before each step, so a last event past the
    # limit still fires and the run ends when the queue drains.
    sched = Scheduler()
    fired = []
    sched.at(150, lambda: fired.append(sched.now))
    sched.run(max_cycles=100)
    assert fired == [150]


def test_max_cycles_raises_only_with_work_remaining():
    sched = Scheduler()
    fired = []
    sched.at(150, lambda: fired.append(sched.now))
    sched.at(160, lambda: fired.append(sched.now))
    with pytest.raises(SimulationError, match="max_cycles=100"):
        sched.run(max_cycles=100)
    assert fired == [150]  # the crossing event fired; the next did not


def test_max_events_exact_budget_plus_one_drains():
    # The guard trips on *exceeding* the budget with work remaining, so
    # limit+1 queued events still drain without an error...
    sched = Scheduler()
    for t in range(4):
        sched.at(t, lambda: None)
    sched.run(max_events=3)
    assert sched.events_fired == 4


def test_max_events_raise_count():
    # ...and a longer backlog raises right after the limit+1-th event.
    sched = Scheduler()
    for t in range(10):
        sched.at(t, lambda: None)
    with pytest.raises(SimulationError, match="max_events=3"):
        sched.run(max_events=3)
    assert sched.events_fired == 4


def test_max_events_budget_is_per_run():
    sched = Scheduler()
    for t in range(3):
        sched.at(t, lambda: None)
    sched.run(max_events=5)
    for t in range(3, 6):
        sched.at(t, lambda: None)
    sched.run(max_events=5)  # fresh budget despite 6 total fired
    assert sched.events_fired == 6


def test_run_no_args_drains_fast_path():
    # run() with no stop condition or limits takes the inlined
    # drain-the-queue fast path; counters must stay exact.
    sched = Scheduler()
    fired = []
    for t in (5, 1, 3):
        sched.at(t, lambda t=t: fired.append(t))
    sched.run()
    assert fired == [1, 3, 5]
    assert sched.events_fired == 3
    assert sched.now == 5
    assert sched.pending() == 0


def test_run_fast_path_callbacks_can_schedule():
    # Callbacks scheduling further events mid-drain keep firing (the
    # hoisted queue alias is the same list heappush appends to).
    sched = Scheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sched.after(1, lambda: chain(n + 1))

    sched.at(0, lambda: chain(0))
    sched.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_inlined_loop_reads_now_in_callbacks():
    # self._now must be written before each callback even in the
    # inlined loops — callbacks schedule relative to it.
    sched = Scheduler()
    seen = []
    sched.at(7, lambda: seen.append(sched.now))
    sched.run(max_cycles=100)
    assert seen == [7]


def test_profiled_run_attributes_every_event():
    # With profiling enabled, run() must dispatch through the swapped
    # step so every event is measured, in all run() modes.
    class Recorder:
        def __init__(self):
            self.n = 0

        def record(self, label, seconds):
            self.n += 1

    from repro.obs.profiler import SimProfiler  # noqa: F401 - import check

    sched = Scheduler()
    rec = Recorder()
    sched.enable_profiling(rec)
    for t in range(3):
        sched.at(t, lambda: None)
    sched.run()
    for t in range(3, 6):
        sched.at(t, lambda: None)
    sched.run(until=lambda: False, max_cycles=100, max_events=100)
    assert rec.n == 6
    assert sched.events_fired == 6
