"""Splittable RNG."""

from repro.common.rng import SplitRng


def test_same_seed_same_stream():
    a = SplitRng(42)
    b = SplitRng(42)
    assert [a.randrange(1000) for _ in range(10)] == [
        b.randrange(1000) for _ in range(10)
    ]


def test_different_seeds_differ():
    a = SplitRng(1)
    b = SplitRng(2)
    assert [a.randrange(10**9) for _ in range(5)] != [
        b.randrange(10**9) for _ in range(5)
    ]


def test_split_streams_are_independent():
    parent = SplitRng("root")
    child_a = parent.split("a")
    # Drawing from the parent must not perturb an already-split child.
    reference = SplitRng("root").split("a")
    parent.random()
    assert [child_a.randrange(10**9) for _ in range(5)] == [
        reference.randrange(10**9) for _ in range(5)
    ]


def test_split_is_deterministic_by_name():
    assert SplitRng(7).split("x").randrange(10**9) == SplitRng(7).split("x").randrange(10**9)
    assert SplitRng(7).split("x").randrange(10**9) != SplitRng(7).split("y").randrange(10**9)


def test_nested_split():
    a = SplitRng(0).split("w").split(3)
    b = SplitRng(0).split("w").split(3)
    assert a.random() == b.random()


def test_delegates_random_api():
    rng = SplitRng(5)
    assert 0 <= rng.random() < 1
    assert rng.choice([1, 2, 3]) in (1, 2, 3)
    items = [1, 2, 3, 4]
    rng.shuffle(items)
    assert sorted(items) == [1, 2, 3, 4]
