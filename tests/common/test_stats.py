"""Statistics registry."""

import json
import random

import pytest

from repro.common.stats import Histogram, StatsRegistry, Timer


def test_add_and_get():
    s = StatsRegistry()
    s.add("a.b")
    s.add("a.b", 2)
    assert s.get("a.b") == 3
    assert s["a.b"] == 3
    assert s.get("missing") == 0


def test_set_overrides():
    s = StatsRegistry()
    s.add("x", 5)
    s.set("x", 1)
    assert s["x"] == 1


def test_prefix_queries():
    s = StatsRegistry()
    s.add("bus.txn.read", 3)
    s.add("bus.txn.readx", 2)
    s.add("core.commits", 7)
    assert s.sum_prefix("bus.txn.") == 5
    assert set(s.with_prefix("bus.")) == {"bus.txn.read", "bus.txn.readx"}


def test_scoped_view_prepends_prefix():
    s = StatsRegistry()
    scope = s.scoped("node3")
    scope.add("l1.hits", 4)
    assert s["node3.l1.hits"] == 4
    assert scope.get("l1.hits") == 4


def test_nested_scopes():
    s = StatsRegistry()
    inner = s.scoped("a").scoped("b")
    inner.add("c")
    assert s["a.b.c"] == 1


def test_merge_adds_counters():
    a, b = StatsRegistry(), StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 3


def test_snapshot_and_diff():
    s = StatsRegistry()
    s.add("x", 5)
    snap = s.snapshot()
    s.add("x", 2)
    s.add("y", 1)
    delta = s.diff(snap)
    assert delta == {"x": 2, "y": 1}


def test_items_sorted():
    s = StatsRegistry()
    s.add("b")
    s.add("a")
    assert [k for k, _ in s.items()] == ["a", "b"]


def test_contains_and_iter():
    s = StatsRegistry()
    s.add("k")
    assert "k" in s
    assert "other" not in s
    assert list(iter(s)) == ["k"]

# -- histograms and timers ------------------------------------------------


def test_histogram_basic_moments():
    h = Histogram()
    for v in (1, 2, 3, 4):
        h.record(v)
    assert h.count == 4
    assert h.mean == 2.5
    assert h.min == 1 and h.max == 4


def test_histogram_record_n():
    h = Histogram()
    h.record(10, n=5)
    assert h.count == 5
    assert h.total == 50


def test_histogram_percentiles_vs_sorted_reference():
    # Percentiles must land within one bucket of the exact
    # nearest-rank answer computed from the sorted sample.
    rng = random.Random(7)
    sample = [rng.randint(1, 5000) for _ in range(2000)]
    h = Histogram()
    for v in sample:
        h.record(v)
    ordered = sorted(sample)
    for p in (50, 95, 99):
        exact = ordered[min(len(ordered) - 1, int(p / 100 * len(ordered)))]
        approx = h.percentile(p)
        # Bucket edges are powers of two: the containing bucket spans
        # [edge/2, edge], so the approximation is within a factor of 2.
        assert exact / 2 <= approx <= exact * 2, (p, exact, approx)


def test_histogram_percentile_bounds_and_edges():
    h = Histogram()
    with pytest.raises(ValueError):
        h.percentile(101)
    assert h.percentile(50) == 0.0  # empty histogram
    h.record(42)
    # A single observation pins every percentile to it exactly.
    assert h.percentile(0) == 42
    assert h.p50 == 42
    assert h.percentile(100) == 42


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    for v in (1, 10, 100):
        a.record(v)
    for v in (5, 50):
        b.record(v)
    a.merge(b)
    assert a.count == 5
    assert a.total == 166
    assert a.min == 1 and a.max == 100


def test_histogram_merge_rejects_different_bounds():
    a = Histogram(bounds=(1, 2, 4))
    b = Histogram(bounds=(1, 10))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(4, 2, 1))


def test_histogram_summary_json_safe():
    h = Histogram()
    h.record(3)
    summary = h.summary()
    json.dumps(summary)
    assert summary["count"] == 1 and summary["p50"] == 3


def test_timer_records_spans():
    t = Timer()
    with t.time():
        pass
    t.record_seconds(0.002)
    assert t.count == 2
    assert t.total_seconds >= 0.002
    assert t.summary()["count"] == 2


def test_registry_histogram_get_or_create():
    s = StatsRegistry()
    h1 = s.histogram("miss_latency")
    h2 = s.histogram("miss_latency")
    assert h1 is h2
    assert s.get_histogram("miss_latency") is h1
    assert s.get_histogram("never") is None
    assert [name for name, _ in s.histogram_items()] == ["miss_latency"]


def test_registry_merged_histogram_by_suffix():
    s = StatsRegistry()
    s.histogram("node0.miss_latency").record(10)
    s.histogram("node1.miss_latency").record(30)
    s.histogram("miss_latency").record(20)  # exact-name match counts too
    s.histogram("node0.queue_depth").record(99)  # different suffix: excluded
    merged = s.merged_histogram("miss_latency")
    assert merged.count == 3
    assert merged.total == 60


def test_registry_merge_includes_histograms():
    a, b = StatsRegistry(), StatsRegistry()
    a.histogram("h").record(1)
    b.histogram("h").record(2)
    b.histogram("only_b").record(3)
    a.merge(b)
    assert a.get_histogram("h").count == 2
    assert a.get_histogram("only_b").count == 1


def test_registry_timer_get_or_create():
    s = StatsRegistry()
    t = s.timer("save")
    assert s.timer("save") is t
    t.record_seconds(0.001)
    assert [name for name, _ in s.timer_items()] == ["save"]


def test_scoped_histogram_and_timer_prefixed():
    s = StatsRegistry()
    scope = s.scoped("node2")
    scope.histogram("miss_latency").record(5)
    scope.timer("fill").record_seconds(0.001)
    assert s.get_histogram("node2.miss_latency").count == 1
    assert [name for name, _ in s.timer_items()] == ["node2.fill"]


def test_nested_scoped_histogram_prefixing():
    s = StatsRegistry()
    s.scoped("a").scoped("b").histogram("h").record(1)
    assert s.get_histogram("a.b.h").count == 1
