"""Statistics registry."""

from repro.common.stats import StatsRegistry


def test_add_and_get():
    s = StatsRegistry()
    s.add("a.b")
    s.add("a.b", 2)
    assert s.get("a.b") == 3
    assert s["a.b"] == 3
    assert s.get("missing") == 0


def test_set_overrides():
    s = StatsRegistry()
    s.add("x", 5)
    s.set("x", 1)
    assert s["x"] == 1


def test_prefix_queries():
    s = StatsRegistry()
    s.add("bus.txn.read", 3)
    s.add("bus.txn.readx", 2)
    s.add("core.commits", 7)
    assert s.sum_prefix("bus.txn.") == 5
    assert set(s.with_prefix("bus.")) == {"bus.txn.read", "bus.txn.readx"}


def test_scoped_view_prepends_prefix():
    s = StatsRegistry()
    scope = s.scoped("node3")
    scope.add("l1.hits", 4)
    assert s["node3.l1.hits"] == 4
    assert scope.get("l1.hits") == 4


def test_nested_scopes():
    s = StatsRegistry()
    inner = s.scoped("a").scoped("b")
    inner.add("c")
    assert s["a.b.c"] == 1


def test_merge_adds_counters():
    a, b = StatsRegistry(), StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a["x"] == 3
    assert a["y"] == 3


def test_snapshot_and_diff():
    s = StatsRegistry()
    s.add("x", 5)
    snap = s.snapshot()
    s.add("x", 2)
    s.add("y", 1)
    delta = s.diff(snap)
    assert delta == {"x": 2, "y": 1}


def test_items_sorted():
    s = StatsRegistry()
    s.add("b")
    s.add("a")
    assert [k for k, _ in s.items()] == ["a", "b"]


def test_contains_and_iter():
    s = StatsRegistry()
    s.add("k")
    assert "k" in s
    assert "other" not in s
    assert list(iter(s)) == ["k"]
