"""Address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.addressing import (
    DEFAULT_LINE_SIZE,
    WORD_SIZE,
    is_power_of_two,
    line_address,
    line_offset,
    word_index,
    words_per_line,
)


def test_line_address_aligns_down():
    assert line_address(0) == 0
    assert line_address(63) == 0
    assert line_address(64) == 64
    assert line_address(130) == 128


def test_line_offset():
    assert line_offset(0) == 0
    assert line_offset(63) == 63
    assert line_offset(64) == 0
    assert line_offset(70) == 6


def test_word_index():
    assert word_index(0) == 0
    assert word_index(8) == 1
    assert word_index(63) == 7
    assert word_index(64) == 0


def test_words_per_line():
    assert words_per_line(64) == 8
    assert words_per_line(128) == 16


def test_custom_line_size():
    assert line_address(130, 32) == 128
    assert word_index(24, 32) == 3


@pytest.mark.parametrize(
    "value,expected",
    [(1, True), (2, True), (64, True), (0, False), (-4, False), (3, False), (96, False)],
)
def test_is_power_of_two(value, expected):
    assert is_power_of_two(value) is expected


@given(st.integers(min_value=0, max_value=2**48))
def test_line_decomposition_roundtrip(addr):
    base = line_address(addr)
    off = line_offset(addr)
    assert base + off == addr
    assert base % DEFAULT_LINE_SIZE == 0
    assert 0 <= off < DEFAULT_LINE_SIZE


@given(st.integers(min_value=0, max_value=2**48))
def test_word_index_in_range(addr):
    assert 0 <= word_index(addr) < DEFAULT_LINE_SIZE // WORD_SIZE
