"""Machine configuration validation and Table 1 fidelity."""

import dataclasses

import pytest

from repro.common.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    PredictorConfig,
    ProtocolConfig,
    ProtocolKind,
    SLEConfig,
    ValidatePolicy,
    scaled_config,
    table1_config,
)
from repro.common.errors import ConfigError


def test_table1_matches_paper_parameters():
    cfg = table1_config()
    assert cfg.n_procs == 4
    assert cfg.core.width == 8
    assert cfg.core.rob_size == 256
    assert cfg.l2.size_bytes == 16 * 1024 * 1024
    assert cfg.l2.ways == 8
    assert cfg.l2.line_size == 64
    assert cfg.bus.addr_latency == 200
    assert cfg.bus.addr_occupancy == 20
    assert cfg.bus.data_latency == 400
    assert cfg.bus.data_occupancy == 50
    assert cfg.protocol.kind is ProtocolKind.MOESI
    cfg.validate()


def test_scaled_config_preserves_latency_ordering():
    cfg = scaled_config()
    assert cfg.l1.latency < cfg.l2.latency < cfg.bus.data_latency
    # Remote misses must dwarf local hits (the paper's regime).
    assert cfg.bus.data_latency > 10 * cfg.l2.latency
    cfg.validate()


def test_predictor_default_tuning_is_3_4_1_1_7():
    p = PredictorConfig()
    assert (p.initial_confidence, p.threshold, p.increment, p.decrement,
            p.saturation) == (3, 4, 1, 1, 7)


def test_cache_geometry_derivations():
    c = CacheConfig(16 * 1024, 4, line_size=64)
    assert c.num_lines == 256
    assert c.num_sets == 64


@pytest.mark.parametrize(
    "kw",
    [
        dict(size_bytes=1000, ways=4),  # not multiple of line size
        dict(size_bytes=16 * 1024, ways=3),  # lines not divisible
        dict(size_bytes=16 * 1024, ways=4, line_size=48),  # non-pow2 line
        dict(size_bytes=16 * 1024, ways=4, latency=0),  # bad latency
    ],
)
def test_invalid_cache_geometry_rejected(kw):
    with pytest.raises(ConfigError):
        CacheConfig(**kw).validate("test")


def test_enhanced_requires_temporal_state():
    cfg = ProtocolConfig(kind=ProtocolKind.MOESI, enhanced=True)
    with pytest.raises(ConfigError, match="T-state"):
        cfg.validate()


def test_predictor_policy_requires_enhanced():
    cfg = ProtocolConfig(
        kind=ProtocolKind.MOESTI, enhanced=False,
        validate_policy=ValidatePolicy.PREDICTOR,
    )
    with pytest.raises(ConfigError, match="useful snoop response"):
        cfg.validate()


def test_l1_larger_than_l2_rejected():
    cfg = MachineConfig(
        l1=CacheConfig(32 * 1024, 4), l2=CacheConfig(16 * 1024, 4)
    )
    with pytest.raises(ConfigError, match="inclusive"):
        cfg.validate()


def test_line_size_mismatch_rejected():
    cfg = MachineConfig(
        l1=CacheConfig(16 * 1024, 4, line_size=32),
        l2=CacheConfig(256 * 1024, 8, line_size=64),
    )
    with pytest.raises(ConfigError, match="line size"):
        cfg.validate()


def test_sle_rob_threshold_bounds():
    with pytest.raises(ConfigError):
        SLEConfig(rob_threshold=0.0).validate()
    with pytest.raises(ConfigError):
        SLEConfig(rob_threshold=1.5).validate()
    SLEConfig(rob_threshold=0.5).validate()


def test_with_helpers_return_modified_copies():
    cfg = scaled_config()
    lvp = cfg.with_lvp(enabled=True)
    assert lvp.lvp.enabled and not cfg.lvp.enabled
    sle = cfg.with_sle(enabled=True)
    assert sle.sle.enabled and not cfg.sle.enabled
    proto = cfg.with_protocol(kind=ProtocolKind.MOESTI)
    assert proto.protocol.kind is ProtocolKind.MOESTI
    assert cfg.protocol.kind is ProtocolKind.MOESI


def test_protocol_kind_capabilities():
    assert ProtocolKind.MOESI.has_owned_state
    assert not ProtocolKind.MESI.has_owned_state
    assert ProtocolKind.MESTI.has_temporal_state
    assert ProtocolKind.MOESTI.has_temporal_state
    assert not ProtocolKind.MOESI.has_temporal_state


def test_n_procs_validation():
    cfg = dataclasses.replace(scaled_config(), n_procs=0)
    with pytest.raises(ConfigError):
        cfg.validate()


def test_bus_config_defaults_sane():
    b = BusConfig()
    assert b.addr_latency > 0 and b.data_latency > b.addr_latency
