"""The executable paper-shape claims."""

import json
import pathlib

import pytest

from repro.analysis.claims import (
    PAPER_CLAIMS,
    Claim,
    evaluate_claims,
    matrix_from_speedups,
)

BENCHES = ("ocean", "radiosity", "raytrace", "specjbb", "specweb", "tpc-b", "tpc-h")
TECHS = ("mesti", "emesti", "lvp", "sle", "emesti+lvp")


def paperlike_matrix():
    """A matrix shaped like the paper's Figure 7."""
    rows = {
        "ocean": [1.01, 1.01, 1.02, 0.98, 1.03],
        "radiosity": [1.01, 1.02, 1.01, 1.025, 1.03],
        "raytrace": [1.02, 1.03, 1.00, 1.09, 1.03],
        "specjbb": [0.70, 1.00, 0.995, 1.00, 1.00],
        "specweb": [0.99, 1.04, 1.01, 0.97, 1.05],
        "tpc-b": [1.065, 1.14, 1.09, 1.00, 1.21],
        "tpc-h": [1.02, 1.03, 1.02, 0.985, 1.04],
    }
    return {b: dict(zip(TECHS, vals)) for b, vals in rows.items()}


def test_paper_figures_satisfy_every_claim():
    report = evaluate_claims(paperlike_matrix())
    assert report.all_hold, report.render()


def test_broken_matrix_fails_claims():
    matrix = paperlike_matrix()
    matrix["specjbb"]["mesti"] = 1.10  # MESTI "winning" on specjbb
    matrix["raytrace"]["sle"] = 0.90  # SLE losing its showcase
    report = evaluate_claims(matrix)
    assert not report.all_hold
    failed = {c.name for c in report.failed_claims()}
    assert "plain MESTI slows specjbb substantially" in failed
    assert any("raytrace" in name for name in failed)


def test_missing_benchmark_counts_as_failure():
    matrix = paperlike_matrix()
    del matrix["specjbb"]
    report = evaluate_claims(matrix)
    assert not report.all_hold


def test_render_lists_every_claim():
    report = evaluate_claims(paperlike_matrix())
    text = report.render()
    for claim in PAPER_CLAIMS:
        assert claim.name in text
    assert f"{report.passed}/{report.total}" in text


def test_custom_claim():
    claim = Claim("toy", "nowhere", lambda m: m["x"]["y"] > 1)
    assert claim.evaluate({"x": {"y": 2}})
    assert not claim.evaluate({"x": {"y": 0.5}})
    assert not claim.evaluate({})  # missing keys fail closed


def test_measured_matrix_satisfies_the_claims():
    """The shipped full-scale results satisfy the paper's shape."""
    path = pathlib.Path(__file__).resolve().parents[2] / "results" / "matrix_scale1.0.json"
    if not path.exists():
        pytest.skip("full-scale results not generated")
    cells = json.loads(path.read_text())
    matrix: dict = {}
    for key, summary in cells.items():
        bench, tech, seed = key.split("|")
        matrix.setdefault(bench, {}).setdefault(tech, []).append(summary["cycles"])
    means = {
        bench: {
            tech: sum(vals) / len(vals) for tech, vals in per.items()
        }
        for bench, per in matrix.items()
    }
    speedups = {
        bench: {
            tech: means[bench]["base"] / cycles
            for tech, cycles in per.items()
            if tech != "base"
        }
        for bench, per in means.items()
    }
    report = evaluate_claims(speedups)
    assert report.all_hold, "\n" + report.render()
