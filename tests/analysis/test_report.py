"""Text rendering for tables and bar charts."""

from repro.analysis.report import ascii_bar, render_grouped_bars, render_table


def test_render_table_alignment():
    out = render_table(["Name", "Value"], [["a", 1], ["bb", 22.5]])
    lines = out.splitlines()
    assert "Name" in lines[0] and "Value" in lines[0]
    assert "-+-" in lines[1]
    assert len(lines) == 4


def test_render_table_title():
    out = render_table(["X"], [[1]], title="Hello")
    assert out.splitlines()[0] == "Hello"


def test_number_formatting():
    out = render_table(["V"], [[1234567.0], [0.123456], [12.34], [0]])
    assert "1,234,567" in out
    assert "0.123" in out
    assert "12.3" in out


def test_ascii_bar_scaling():
    assert ascii_bar(5, 10, width=10) == "#####"
    assert ascii_bar(10, 10, width=10) == "#" * 10
    assert ascii_bar(0, 10, width=10) == ""
    assert ascii_bar(20, 10, width=10) == "#" * 10  # clamped
    assert ascii_bar(1, 0) == ""  # degenerate scale


def test_grouped_bars():
    out = render_grouped_bars(
        ["g1", "g2"], {"serieA": [1.0, 2.0], "serieB": [2.0, 1.0]}, unit="x"
    )
    assert "g1:" in out and "g2:" in out
    assert "serieA" in out and "serieB" in out
    assert "2.000x" in out


def test_grouped_bars_with_baseline():
    out = render_grouped_bars(["g"], {"s": [1.5]}, baseline=1.0)
    assert "(baseline)" in out
