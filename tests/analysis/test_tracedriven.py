"""Trace recording and the trace-driven limit analyzer."""

import pytest

from repro.analysis.trace import TraceRecord, TraceRecorder
from repro.analysis.tracedriven import TraceDrivenAnalyzer


def rec(node, kind, addr, value=0):
    return TraceRecord(node=node, kind=kind, addr=addr, value=value)


LINE = 0x1000


class TestAnalyzer:
    def test_cold_misses(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([rec(0, "load", LINE), rec(0, "load", LINE)])
        assert out.references == 2
        assert out.misses == 1 and out.cold_misses == 1
        assert out.comm_misses == 0

    def test_comm_miss_after_remote_write(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([
            rec(0, "load", LINE),
            rec(1, "store", LINE, 5),
            rec(0, "load", LINE),
        ])
        assert out.comm_misses == 1

    def test_true_sharing_not_capturable(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([
            rec(0, "load", LINE),
            rec(1, "store", LINE, 5),  # changes the word P0 reads
            rec(0, "load", LINE),
        ])
        assert out.lvp_capturable == 0
        assert out.mesti_capturable == 0

    def test_false_sharing_lvp_capturable_only(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([
            rec(0, "load", LINE),  # word 0
            rec(1, "store", LINE + 8, 5),  # a different word
            rec(0, "load", LINE),  # word 0 unchanged
        ])
        assert out.comm_misses == 1
        assert out.lvp_capturable == 1
        assert out.mesti_capturable == 0  # the line as a whole changed

    def test_temporal_silence_capturable_by_both(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([
            rec(0, "load", LINE),
            rec(1, "store", LINE, 5),
            rec(1, "store", LINE, 0),  # reverts: temporally silent pair
            rec(0, "load", LINE),
        ])
        assert out.comm_misses == 1
        assert out.lvp_capturable == 1
        assert out.mesti_capturable == 1

    def test_update_silent_store_still_invalidates_in_trace_model(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([
            rec(0, "load", LINE),
            rec(1, "store", LINE, 0),  # writes the existing value
            rec(0, "load", LINE),
        ])
        assert out.comm_misses == 1
        assert out.lvp_capturable == 1  # value unchanged

    def test_writes_count_as_references(self):
        a = TraceDrivenAnalyzer(2)
        out = a.analyze([rec(0, "store", LINE, 1), rec(0, "stcx", LINE, 2)])
        assert out.references == 2
        assert out.misses == 1  # second access hits

    def test_fractions(self):
        empty = TraceDrivenAnalyzer(2).analyze([])
        assert empty.lvp_fraction == 0.0 and empty.mesti_fraction == 0.0


class TestRecorderIntegration:
    def test_recorder_captures_system_references(self, tiny_config):
        from repro.cpu.program import BlockBuilder
        from repro.system.system import System
        from tests.harness import ScriptWorkload

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.store(0x2000, 7)
            # A different line: store-to-load forwarding would satisfy
            # a same-word load inside the core, before the trace point.
            b.load(0x2040, b.fresh())
            b.larx(0x3000)
            v = yield b.take()
            b.stcx(0x3000, 1)
            ok = yield b.take()
            b.end()
            yield b.take()

        sys_ = System(tiny_config, ScriptWorkload(prog, prog), seed=0)
        recorder = TraceRecorder(sys_)
        sys_.run(max_cycles=5_000_000)
        kinds = {r.kind for r in recorder.records}
        assert {"store", "load", "larx", "stcx"} <= kinds
        assert recorder.writes() >= 2
        assert recorder.reads() >= 2
        assert len(recorder) == recorder.writes() + recorder.reads()

    def test_analyzer_on_recorded_trace(self, tiny_config):
        from repro.system.system import System
        from repro.workloads.registry import get_benchmark

        sys_ = System(tiny_config.with_lvp(enabled=False),
                      get_benchmark("radiosity", scale=0.02), seed=1)
        recorder = TraceRecorder(sys_)
        sys_.run(max_cycles=20_000_000)
        analysis = TraceDrivenAnalyzer(tiny_config.n_procs).analyze(recorder.records)
        assert analysis.references == len(recorder)
        assert analysis.misses >= analysis.comm_misses + analysis.cold_misses - 1
        assert 0 <= analysis.lvp_fraction <= 1
        # LVP's theoretical coverage dominates MESTI's (it adds false
        # sharing and quiet true sharing, §3.1).
        assert analysis.lvp_capturable >= analysis.mesti_capturable
