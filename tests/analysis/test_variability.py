"""Confidence-interval machinery (Alameldeen-Wood methodology)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.variability import ConfidenceInterval, mean_ci, speedup_ci


def test_single_sample_zero_width():
    ci = mean_ci([5.0])
    assert ci.mean == 5.0 and ci.half_width == 0.0


def test_identical_samples_zero_width():
    ci = mean_ci([3.0, 3.0, 3.0])
    assert ci.mean == 3.0
    assert ci.half_width == pytest.approx(0.0)


def test_known_interval():
    # mean 10, sd 1, n=4 -> sem 0.5, t(0.975, df=3) = 3.182
    ci = mean_ci([9.0, 10.0, 10.0, 11.0])
    assert ci.mean == pytest.approx(10.0)
    assert ci.half_width == pytest.approx(3.182 * (0.816 / 2), rel=0.01)


def test_empty_rejected():
    with pytest.raises(ValueError):
        mean_ci([])


def test_overlap():
    a = ConfidenceInterval(mean=1.0, half_width=0.1, n=3)
    b = ConfidenceInterval(mean=1.15, half_width=0.1, n=3)
    c = ConfidenceInterval(mean=1.5, half_width=0.1, n=3)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_speedup_paired():
    base = [100.0, 110.0, 105.0]
    variant = [90.0, 100.0, 96.0]
    ci = speedup_ci(base, variant)
    assert 1.05 < ci.mean < 1.15
    assert ci.n == 3


def test_speedup_unpaired_fallback():
    ci = speedup_ci([100.0, 102.0], [50.0, 51.0, 49.0])
    assert ci.mean == pytest.approx(101.0 / 50.0, rel=0.02)


def test_str_render():
    assert "±" in str(ConfidenceInterval(mean=1.0, half_width=0.01, n=3))


@given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=30))
def test_mean_within_interval(samples):
    ci = mean_ci(samples)
    assert ci.low <= ci.mean <= ci.high
    assert ci.half_width >= 0


@given(
    st.lists(st.floats(min_value=10.0, max_value=1e5), min_size=2, max_size=10),
)
def test_paired_speedup_of_identical_runs_is_one(samples):
    ci = speedup_ci(samples, list(samples))
    assert ci.mean == pytest.approx(1.0)
