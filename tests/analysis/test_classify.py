"""Miss classification (Figure 1 taxonomy)."""

import pytest

from repro.analysis.classify import MissClassifier
from repro.common.stats import StatsRegistry


@pytest.fixture
def cls():
    stats = StatsRegistry()
    return MissClassifier(stats.scoped("m"), n_procs=2), stats


BASE = 0x1000


def words(*pairs):
    out = [0] * 8
    for idx, val in pairs:
        out[idx] = val
    return out


def test_first_miss_is_cold(cls):
    c, stats = cls
    assert c.on_miss(0, BASE, 0) == "cold"
    assert stats["m.miss.cold"] == 1


def test_refill_then_evict_is_capacity(cls):
    c, stats = cls
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words())
    c.on_local_evict(0, BASE)
    assert c.on_miss(0, BASE, 0) == "capacity"


def test_remote_invalidation_makes_comm(cls):
    c, stats = cls
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words())
    c.on_remote_invalidate(0, BASE, words((0, 5)))
    assert c.on_miss(0, BASE, 0) == "comm"
    assert stats["m.miss.comm"] == 1


def test_comm_subclass_tss(cls):
    c, stats = cls
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words((0, 5)))
    c.on_remote_invalidate(0, BASE, words((0, 5)))
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words((0, 5)))  # identical: the store pair reverted
    assert stats["m.miss.comm.tss"] == 1


def test_comm_subclass_false_sharing(cls):
    c, stats = cls
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words())
    c.on_remote_invalidate(0, BASE, words((0, 1), (3, 9)))
    c.on_miss(0, BASE, 0)  # we access word 0
    c.on_fill(0, BASE, words((0, 1), (3, 99)))  # only word 3 changed
    assert stats["m.miss.comm.false"] == 1


def test_comm_subclass_true_sharing(cls):
    c, stats = cls
    c.on_miss(0, BASE, 2)
    c.on_fill(0, BASE, words())
    c.on_remote_invalidate(0, BASE, words((2, 7)))
    c.on_miss(0, BASE, 2)
    c.on_fill(0, BASE, words((2, 8)))  # the accessed word changed
    assert stats["m.miss.comm.true"] == 1


def test_nodes_tracked_independently(cls):
    c, stats = cls
    c.on_miss(0, BASE, 0)
    c.on_fill(0, BASE, words())
    assert c.on_miss(1, BASE, 0) == "cold"


def test_totals(cls):
    c, stats = cls
    for i in range(3):
        c.on_miss(0, BASE + i * 64, 0)
    assert stats["m.miss.total"] == 3
    assert c.total_misses() == 3
