"""Core/program lifecycle edge cases."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload


def run_single(config, fn, seed=0):
    cfg = dataclasses.replace(config, n_procs=1)
    sys_ = System(cfg, ScriptWorkload(fn), seed=seed)
    res = sys_.run(max_cycles=5_000_000, max_events=2_000_000)
    return res, sys_


def test_minimal_program(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert res.committed == 1
    assert sys_.cores[0].finished


def test_control_op_as_last_real_op(tiny_config):
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x100, 5)
        b.load_ctl(0x100)
        v = yield b.take()
        seen.append(v)
        b.end()
        yield b.take()

    run_single(tiny_config, prog)
    assert seen == [5]


def test_generator_return_without_end_op(tiny_config):
    """A program that simply returns (no END op) still terminates."""

    def prog(tid, config, rng):
        b = BlockBuilder()
        for _ in range(5):
            b.alu()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert sys_.cores[0].finished
    assert res.committed == 5


def test_many_tiny_blocks(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for i in range(50):
            b.alu()
            yield b.take()
        b.end()
        yield b.take()

    res, _ = run_single(tiny_config, prog)
    assert res.committed == 51


def test_isync_at_program_start(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        b.isync()
        b.alu()
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert sys_.cores[0].finished


def test_back_to_back_control_ops(tiny_config):
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        for i in range(4):
            b.store(0x200 + i * 8, i * 10)
            yield b.take()
            b.load_ctl(0x200 + i * 8)
            v = yield b.take()
            seen.append(v)
        b.end()
        yield b.take()

    run_single(tiny_config, prog)
    assert seen == [0, 10, 20, 30]


def test_store_then_larx_same_address_goes_to_memory(tiny_config):
    """larx never forwards from the store buffer (it must establish a
    reservation at the coherence point)."""
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x300, 9)
        b.larx(0x300)
        v = yield b.take()
        seen.append(v)
        b.stcx(0x300, 10)
        ok = yield b.take()
        seen.append(ok)
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert seen[0] == 9  # drained before the larx read it
    assert seen[1] == 1  # reservation held (no remote interference)
