"""Core squash/replay mechanics in isolation."""

import dataclasses

import pytest

from repro.cpu.core import Phase
from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LINE = 0x5000
FLAG = 0x5800


def mispredict_setup(tail_builder):
    """P0 gets a guaranteed LVP mispredict, then runs ``tail_builder``."""

    def p0(tid, config, rng):
        b = BlockBuilder()
        b.load_ctl(LINE)  # warm (word 0)
        v = yield b.take()
        while True:
            b.load_ctl(FLAG)
            f = yield b.take()
            if f:
                break
            for _ in range(6):
                b.alu(latency=2)
        # word 0 changed remotely: residue mispredicts.
        dst = b.fresh()
        b.load(LINE, dst)
        yield from tail_builder(b, dst)
        b.end()
        yield b.take()

    def p1(tid, config, rng):
        b = BlockBuilder()
        b.store(LINE, 77)  # change word 0 (true sharing)
        b.sync()
        b.store(FLAG, 1)
        b.end()
        yield b.take()

    return p0, p1


def run_pair(config, p0, p1, seed=0):
    cfg = config.with_lvp(enabled=True)
    sys_ = System(cfg, ScriptWorkload(p0, p1), seed=seed)
    res = sys_.run(max_cycles=5_000_000, max_events=2_000_000)
    return res, sys_


def test_younger_ops_replay_after_squash(tiny_config):
    def tail(b, dst):
        for _ in range(10):
            b.alu(latency=1)
        b.store(LINE + 16, 5)
        yield b.take()

    p0, p1 = mispredict_setup(tail)
    res, sys_ = run_pair(tiny_config, p0, p1)
    assert res.stats["core0.squash.lvp"] == 1
    assert res.stats["core0.squash.ops"] >= 1
    # The replayed store still landed exactly once.
    line = sys_.controllers[0].lookup(LINE)
    assert line.data[2] == 5
    assert line.data[0] == 77  # and the mispredicted load's line healed


def test_replayed_dependents_recompute(tiny_config):
    """ALU consumers of the squashed load must re-resolve their deps."""

    def tail(b, dst):
        cur = dst
        for _ in range(5):
            nxt = b.fresh()
            b.alu(nxt, (cur,), latency=2)
            cur = nxt
        yield b.take()

    p0, p1 = mispredict_setup(tail)
    res, sys_ = run_pair(tiny_config, p0, p1)
    assert sys_.cores[0].finished
    assert res.stats["core0.squash.lvp"] == 1


def test_committed_ops_never_squashed(tiny_config):
    """Ops retired before the speculative load are untouched."""

    def tail(b, dst):
        b.store(LINE + 24, 9)
        yield b.take()

    p0, p1 = mispredict_setup(tail)
    res, sys_ = run_pair(tiny_config, p0, p1)
    committed = res.stats["core0.commit.store"]
    # Stores: P0 stores LINE+24 exactly once despite the squash
    # (commit is in-order and behind the unverified load).
    line = sys_.controllers[0].lookup(LINE)
    assert line.data[3] == 9


def test_control_after_spec_waits_for_verification(tiny_config):
    """A control op younger than a speculative load cannot hand its
    value to the program until the speculation resolves."""
    seen = []

    def tail(b, dst):
        b.load_ctl(LINE + 8)  # control load after the spec load
        v = yield b.take()
        seen.append(v)
        b.alu()
        yield b.take()

    p0, p1 = mispredict_setup(tail)
    res, sys_ = run_pair(tiny_config, p0, p1)
    assert seen == [0]  # architecturally correct (word 1 never written)
    assert sys_.cores[0].finished


def test_multiple_sequential_squashes(tiny_config):
    """Back-to-back mispredicts on different lines all recover."""
    OTHER = 0x5100

    def p0(tid, config, rng):
        b = BlockBuilder()
        b.load_ctl(LINE)
        v = yield b.take()
        b.load_ctl(OTHER)
        v = yield b.take()
        while True:
            b.load_ctl(FLAG)
            f = yield b.take()
            if f:
                break
            for _ in range(6):
                b.alu(latency=2)
        b.load(LINE, b.fresh())  # mispredict 1
        b.alu(latency=30)
        yield b.take()
        b.load(OTHER, b.fresh())  # mispredict 2
        b.alu()
        yield b.take()
        b.end()
        yield b.take()

    def p1(tid, config, rng):
        b = BlockBuilder()
        b.store(LINE, 1)
        b.store(OTHER, 2)
        b.sync()
        b.store(FLAG, 1)
        b.end()
        yield b.take()

    res, sys_ = run_pair(tiny_config, p0, p1)
    assert sys_.cores[0].finished
    assert res.stats["core0.squash.lvp"] >= 1
