"""Micro-op ISA and the thread-program/block-builder layer."""

import pytest

from repro.common.errors import SimulationError
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.program import BlockBuilder, ThreadProgram


class TestOpKind:
    def test_memory_classification(self):
        assert OpKind.LOAD.is_memory and OpKind.STCX.is_memory
        assert not OpKind.ALU.is_memory
        assert OpKind.LARX.is_load_like
        assert OpKind.STORE.is_store_like
        assert not OpKind.SYNC.is_memory


class TestBlockBuilder:
    def test_fresh_registers_unique(self):
        b = BlockBuilder()
        regs = {b.fresh() for _ in range(10)}
        assert len(regs) == 10

    def test_build_sequence(self):
        b = BlockBuilder()
        r = b.fresh()
        b.load(0x100, r)
        b.alu(b.fresh(), (r,), latency=3)
        b.store(0x108, 5)
        block = b.take()
        assert [op.kind for op in block] == [OpKind.LOAD, OpKind.ALU, OpKind.STORE]
        assert block[1].sregs == (r,)
        assert block[1].latency == 3
        assert b.pending == 0

    def test_take_empty_rejected(self):
        with pytest.raises(SimulationError):
            BlockBuilder().take()

    def test_control_ops(self):
        b = BlockBuilder()
        b.larx(0x40, pc=7)
        block = b.take()
        assert block[0].control and block[0].kind is OpKind.LARX
        b.stcx(0x40, 1, pc=7, meta={"sle_fallback": ("cas",)})
        block = b.take()
        assert block[0].meta["sle_fallback"] == ("cas",)

    def test_isync_unsafe_flag(self):
        b = BlockBuilder()
        b.isync(unsafe_ctx=True)
        assert b.take()[0].unsafe_ctx


class TestThreadProgram:
    def test_yields_blocks_and_receives_values(self):
        received = []

        def gen():
            b = BlockBuilder()
            b.larx(0x40)
            value = yield b.take()
            received.append(value)
            b.end()
            yield b.take()

        prog = ThreadProgram(gen())
        first = prog.next_block(None)
        assert first[0].kind is OpKind.LARX
        second = prog.next_block(123)
        assert received == [123]
        assert second[0].kind is OpKind.END
        assert prog.next_block(None) is None
        assert prog.finished

    def test_empty_block_rejected(self):
        def gen():
            yield []

        with pytest.raises(SimulationError):
            ThreadProgram(gen()).next_block(None)

    def test_control_must_be_last(self):
        def gen():
            yield [
                MicroOp(OpKind.LOAD, addr=0, control=True),
                MicroOp(OpKind.ALU),
            ]

        with pytest.raises(SimulationError, match="last op"):
            ThreadProgram(gen()).next_block(None)

    def test_finished_program_returns_none_forever(self):
        def gen():
            yield [MicroOp(OpKind.END)]

        prog = ThreadProgram(gen())
        prog.next_block(None)
        assert prog.next_block(None) is None
        assert prog.next_block(None) is None
