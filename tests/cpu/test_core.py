"""The window-based core timing model, driven by scripted programs."""

import dataclasses

import pytest

from repro.cpu.core import SlotCursor
from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload


def single(config):
    return dataclasses.replace(config, n_procs=1)


def run_script(config, fn, seed=0, **kw):
    sys_ = System(single(config), ScriptWorkload(fn), seed=seed)
    result = sys_.run(max_cycles=5_000_000, max_events=2_000_000, **kw)
    return result, sys_


class TestSlotCursor:
    def test_width_limits_per_cycle(self):
        c = SlotCursor(2)
        assert [c.next_at(0) for _ in range(5)] == [0, 0, 1, 1, 2]

    def test_advances_to_earliest(self):
        c = SlotCursor(2)
        c.next_at(0)
        assert c.next_at(10) == 10
        assert c.next_at(10) == 10
        assert c.next_at(10) == 11

    def test_monotonic_even_for_stale_earliest(self):
        c = SlotCursor(1)
        assert c.next_at(5) == 5
        assert c.next_at(0) == 6


class TestBasicExecution:
    def test_simple_program_completes(self, tiny_config):
        def prog(tid, config, rng):
            b = BlockBuilder()
            for i in range(10):
                b.alu()
            b.end()
            yield b.take()

        res, _ = run_script(tiny_config, prog)
        assert res.committed == 11
        assert res.cycles > 0

    def test_load_returns_memory_value(self, tiny_config):
        seen = []

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.store(0x100, 42)
            yield b.take()
            b.load_ctl(0x100)
            value = yield b.take()
            seen.append(value)
            b.end()
            yield b.take()

        run_script(tiny_config, prog)
        assert seen == [42]

    def test_store_to_load_forwarding_within_window(self, tiny_config):
        seen = []

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.store(0x200, 7)
            b.load_ctl(0x200)  # same block: store still in the window
            value = yield b.take()
            seen.append(value)
            b.end()
            yield b.take()

        res, sys_ = run_script(tiny_config, prog)
        assert seen == [7]
        assert sys_.stats["core0.loads.forwarded"] >= 1

    def test_dependent_alu_chain_serializes(self, tiny_config):
        def chain(n):
            def prog(tid, config, rng):
                b = BlockBuilder()
                prev = b.fresh()
                b.alu(prev, latency=1)
                for _ in range(n):
                    cur = b.fresh()
                    b.alu(cur, (prev,), latency=1)
                    prev = cur
                b.end()
                yield b.take()

            return prog

        short, _ = run_script(tiny_config, chain(10))
        long, _ = run_script(tiny_config, chain(60))
        # A dependence chain runs ~1 op/cycle regardless of width.
        assert long.cycles - short.cycles >= 45

    def test_independent_alus_exploit_width(self, tiny_config):
        def parallel(n):
            def prog(tid, config, rng):
                b = BlockBuilder()
                for _ in range(n):
                    b.alu(latency=1)
                b.end()
                yield b.take()

            return prog

        r16, _ = run_script(tiny_config, parallel(16))
        r32, _ = run_script(tiny_config, parallel(32))
        # Width 2: ~n/2 cycles; doubling ops adds ~8 cycles, not ~16.
        assert (r32.cycles - r16.cycles) <= 12

    def test_ipc_recorded(self, tiny_config):
        def prog(tid, config, rng):
            b = BlockBuilder()
            for _ in range(50):
                b.alu()
            b.end()
            yield b.take()

        res, _ = run_script(tiny_config, prog)
        assert res.ipc > 0.5


class TestMemoryOverlap:
    def test_independent_misses_overlap(self, tiny_config):
        """MLP: two misses to different lines cost ~one miss latency."""

        def loads(n):
            def prog(tid, config, rng):
                b = BlockBuilder()
                for i in range(n):
                    b.load(0x1000 + i * 64, b.fresh())
                b.end()
                yield b.take()

            return prog

        one, _ = run_script(tiny_config, loads(1))
        four, _ = run_script(tiny_config, loads(4))
        # Four overlapped misses must cost far less than 4x one miss.
        assert four.cycles < one.cycles * 2.5

    def test_mshr_limit_bounds_overlap(self, tiny_config):
        cfg = tiny_config.with_core(mshrs=1)

        def prog(tid, config, rng):
            b = BlockBuilder()
            for i in range(4):
                b.load(0x1000 + i * 64, b.fresh())
            b.end()
            yield b.take()

        limited, _ = run_script(cfg, prog)
        free, _ = run_script(tiny_config.with_core(mshrs=8), prog)
        assert limited.cycles > free.cycles * 1.8


class TestSerialization:
    def test_isync_drains_and_penalizes(self, tiny_config):
        def with_isync(n_isyncs):
            def prog(tid, config, rng):
                b = BlockBuilder()
                for _ in range(n_isyncs):
                    for _ in range(4):
                        b.alu()
                    b.isync()
                b.end()
                yield b.take()

            return prog

        none, _ = run_script(tiny_config, with_isync(0))
        some, _ = run_script(tiny_config, with_isync(6))
        assert some.cycles > none.cycles + 5 * tiny_config.core.fetch_redirect_penalty

    def test_sync_waits_for_store_buffer(self, tiny_config):
        seen = []

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.store(0x300, 9)
            b.sync()
            b.load_ctl(0x300)
            value = yield b.take()
            seen.append(value)
            b.end()
            yield b.take()

        run_script(tiny_config, prog)
        assert seen == [9]

    def test_store_drains_serialize_and_complete(self, tiny_config):
        cfg = tiny_config.with_core(store_buffer=1)

        def prog(tid, config, rng):
            b = BlockBuilder()
            for i in range(8):
                b.store(0x1000 + i * 64, i)  # each drain misses
            b.end()
            yield b.take()

        res, sys_ = run_script(cfg, prog)
        assert sys_.stats["core0.sb.drained"] == 8
        # Serial drains: each store miss pays at least the data latency.
        assert res.cycles >= 8 * cfg.bus.data_latency
        # And all values landed.
        node = sys_.nodes[0]
        for i in range(8):
            line = sys_.controllers[0].lookup(0x1000 + i * 64)
            assert line is not None and line.data[0] == i


class TestLarxStcx:
    def test_acquire_release_round_trip(self, tiny_config):
        outcomes = []

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.larx(0x400)
            v = yield b.take()
            outcomes.append(("larx", v))
            b.stcx(0x400, 1)
            ok = yield b.take()
            outcomes.append(("stcx", ok))
            b.store(0x400, 0)
            b.end()
            yield b.take()

        res, _ = run_script(tiny_config, prog)
        assert outcomes == [("larx", 0), ("stcx", 1)]

    def test_stcx_failure_path_delivers_zero(self, tiny_config):
        outcomes = []

        def prog(tid, config, rng):
            b = BlockBuilder()
            b.stcx(0x400, 1)  # no larx: no reservation
            ok = yield b.take()
            outcomes.append(ok)
            b.end()
            yield b.take()

        run_script(tiny_config, prog)
        assert outcomes == [0]


class TestMultiCore:
    def test_producer_consumer_value_flows(self, tiny_config):
        seen = []

        def producer(tid, config, rng):
            b = BlockBuilder()
            b.store(0x500, 77)
            b.store(0x540, 1)  # flag
            b.end()
            yield b.take()

        def consumer(tid, config, rng):
            b = BlockBuilder()
            while True:
                b.load_ctl(0x540)
                flag = yield b.take()
                if flag:
                    break
                for _ in range(4):
                    b.alu(latency=2)
            b.load_ctl(0x500)
            value = yield b.take()
            seen.append(value)
            b.end()
            yield b.take()

        sys_ = System(tiny_config, ScriptWorkload(producer, consumer), seed=0)
        sys_.run(max_cycles=2_000_000)
        assert seen == [77]

    def test_spinlock_mutual_exclusion(self, tiny4_config):
        """Four threads increment a counter under a larx/stcx lock."""
        LOCK, COUNTER, N = 0x600, 0x680, 10

        def worker(tid, config, rng):
            b = BlockBuilder()
            for _ in range(N):
                while True:
                    b.larx(LOCK)
                    v = yield b.take()
                    if v != 0:
                        b.alu(latency=4)
                        continue
                    b.stcx(LOCK, tid + 1)
                    ok = yield b.take()
                    if ok:
                        break
                b.load_ctl(COUNTER)
                c = yield b.take()
                b.store(COUNTER, c + 1)
                b.sync()
                b.store(LOCK, 0)
                yield b.take()
            b.end()
            yield b.take()

        sys_ = System(tiny4_config, ScriptWorkload(*([worker] * 4)), seed=3)
        sys_.run(max_cycles=20_000_000, max_events=5_000_000)
        # Mutual exclusion: every increment must have landed.
        final = sys_.memory.read_line(0x680)[0]
        dirty = None
        for ctrl in sys_.controllers:
            line = ctrl.lookup(0x680)
            if line is not None and line.state.dirty:
                dirty = line.data[0]
        assert (dirty if dirty is not None else final) == 4 * N
