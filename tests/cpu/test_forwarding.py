"""Store-to-load forwarding precedence and granularity."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload


def run_single(config, fn, seed=0):
    cfg = dataclasses.replace(config, n_procs=1)
    sys_ = System(cfg, ScriptWorkload(fn), seed=seed)
    res = sys_.run(max_cycles=5_000_000, max_events=2_000_000)
    return res, sys_


def test_youngest_window_store_wins(tiny_config):
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x100, 1)
        b.store(0x100, 2)
        b.store(0x100, 3)
        b.load_ctl(0x100)
        v = yield b.take()
        seen.append(v)
        b.end()
        yield b.take()

    run_single(tiny_config, prog)
    assert seen == [3]


def test_forwarding_is_word_granular(tiny_config):
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x200, 7)  # word 0
        b.load_ctl(0x208)  # word 1: NOT forwarded, reads memory (0)
        v = yield b.take()
        seen.append(v)
        b.load_ctl(0x200)
        v = yield b.take()
        seen.append(v)
        b.end()
        yield b.take()

    run_single(tiny_config, prog)
    assert seen == [0, 7]


def test_forwarded_loads_skip_the_bus(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x300, 1)
        for _ in range(6):
            b.load(0x300, b.fresh())
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert sys_.stats["core0.loads.forwarded"] >= 5
    # Only the store's drain touched the bus for that line.
    assert res.txn("readx") + res.txn("read") <= 2


def test_forwarding_across_blocks(tiny_config):
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x400, 11)
        yield b.take()
        b.load_ctl(0x400)  # next block; store may still be undrained
        v = yield b.take()
        seen.append(v)
        b.end()
        yield b.take()

    run_single(tiny_config, prog)
    assert seen == [11]


def test_drained_store_forwards_from_cache(tiny_config):
    """After the SB drains, loads hit the dirty cache line instead."""
    seen = []

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.store(0x500, 13)
        b.sync()
        for _ in range(40):  # give the drain time
            b.alu(latency=4)
        yield b.take()
        b.load_ctl(0x500)
        v = yield b.take()
        seen.append(v)
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert seen == [13]
