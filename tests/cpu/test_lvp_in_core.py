"""LVP through the core: speculation, verification, squash/replay."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LINE = 0x5000
FLAG = 0x5800


def lvp_cfg(base):
    return base.with_lvp(enabled=True)


def two_phase(consumer_body):
    """P1 warms+invalidates P0's line, then P0 runs consumer_body."""

    def p0(tid, config, rng):
        b = BlockBuilder()
        b.load_ctl(LINE)  # warm our copy
        v = yield b.take()
        while True:  # wait for P1's signal
            b.load_ctl(FLAG)
            f = yield b.take()
            if f:
                break
            for _ in range(6):
                b.alu(latency=2)
        yield from consumer_body(b)
        b.end()
        yield b.take()

    def p1(tid, config, rng):
        b = BlockBuilder()
        b.store(LINE + 8, 99)  # false-sharing invalidation (word 1)
        b.sync()
        b.store(FLAG, 1)
        b.end()
        yield b.take()

    return p0, p1


class TestVerification:
    def test_correct_prediction_commits(self, tiny_config):
        def body(b):
            b.load(LINE, b.fresh())  # word 0: unchanged -> correct
            yield b.take()

        p0, p1 = two_phase(body)
        sys_ = System(lvp_cfg(tiny_config), ScriptWorkload(p0, p1), seed=0)
        res = sys_.run(max_cycles=5_000_000)
        assert res.stats["node0.lvp.predictions"] >= 1
        assert res.stats["node0.lvp.correct"] >= 1
        assert res.stats["core0.squash.lvp"] == 0

    def test_wrong_prediction_squashes_and_heals(self, tiny_config):
        observed = []

        def body(b):
            b.load_ctl(LINE + 8)  # the changed word... control: no spec
            v = yield b.take()
            observed.append(("ctl", v))
            b.load(LINE + 8, b.fresh())  # non-control reread: hits now
            yield b.take()

        # Use a non-control mispredicting load: plain load of word 1.
        def body2(b):
            dst = b.fresh()
            b.load(LINE + 8, dst)  # stale residue 0, real 99 -> squash
            b.alu(b.fresh(), (dst,), latency=2)
            yield b.take()

        p0, p1 = two_phase(body2)
        sys_ = System(lvp_cfg(tiny_config), ScriptWorkload(p0, p1), seed=0)
        res = sys_.run(max_cycles=5_000_000)
        assert res.stats["node0.lvp.mispredictions"] >= 1
        assert res.stats["core0.squash.lvp"] >= 1
        # After the squash the machine completed everything.
        assert sys_.cores[0].finished

    def test_control_loads_never_speculate(self, tiny_config):
        def body(b):
            b.load_ctl(LINE + 8)  # control: always architectural
            v = yield b.take()
            assert v == 99  # the REAL value, never the stale residue
            b.alu()
            yield b.take()

        p0, p1 = two_phase(body)
        sys_ = System(lvp_cfg(tiny_config), ScriptWorkload(p0, p1), seed=0)
        res = sys_.run(max_cycles=5_000_000)
        assert res.stats["core0.squash.lvp"] == 0

    def test_squash_penalty_costs_cycles(self, tiny_config):
        def correct(b):
            b.load(LINE, b.fresh())
            yield b.take()

        def wrong(b):
            b.load(LINE + 8, b.fresh())
            yield b.take()

        def run(body):
            p0, p1 = two_phase(body)
            sys_ = System(lvp_cfg(tiny_config), ScriptWorkload(p0, p1), seed=0)
            return sys_.run(max_cycles=5_000_000)

        ok = run(correct)
        bad = run(wrong)
        # A mispredict costs at least the squash penalty over a correct
        # prediction of the same shape.
        assert bad.stats["core0.finish_time"] >= ok.stats["core0.finish_time"]


class TestSpeculationWindow:
    def test_dependent_chain_issues_early_on_prediction(self, tiny_config):
        """The §3 MLP benefit: dependent misses overlap verification."""
        FAR = 0x2_0000

        def chained(b):
            root = b.fresh()
            b.load(LINE, root)  # predicted (word 0 unchanged)
            child = b.fresh()
            b.load(FAR, child, sregs=(root,))  # dependent cold miss
            b.alu(b.fresh(), (child,), latency=1)
            yield b.take()

        def run(lvp):
            p0, p1 = two_phase(chained)
            cfg = lvp_cfg(tiny_config) if lvp else tiny_config
            sys_ = System(cfg, ScriptWorkload(p0, p1), seed=0)
            res = sys_.run(max_cycles=5_000_000)
            return res.stats["core0.finish_time"]

        assert run(lvp=True) < run(lvp=False)
