"""Commit accounting: op-kind counters and IPC bookkeeping."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload


def run_single(config, fn, seed=0):
    cfg = dataclasses.replace(config, n_procs=1)
    sys_ = System(cfg, ScriptWorkload(fn), seed=seed)
    res = sys_.run(max_cycles=5_000_000, max_events=2_000_000)
    return res, sys_


def test_commit_counters_match_program(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for i in range(7):
            b.alu()
        for i in range(3):
            b.load(0x1000 + i * 64, b.fresh())
        for i in range(2):
            b.store(0x2000 + i * 64, i)
        b.larx(0x3000)
        v = yield b.take()
        b.stcx(0x3000, 1)
        ok = yield b.take()
        b.isync()
        b.sync()
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    stats = sys_.stats
    assert stats["core0.commit.alu"] == 7
    assert stats["core0.commit.load"] == 3
    assert stats["core0.commit.store"] == 2
    assert stats["core0.commit.larx"] == 1
    assert stats["core0.commit.stcx"] == 1
    assert stats["core0.commit.isync"] == 1
    assert stats["core0.commit.sync"] == 1
    assert stats["core0.commit.end"] == 1
    total = sum(
        stats[f"core0.commit.{k}"]
        for k in ("alu", "load", "store", "larx", "stcx", "isync", "sync", "end")
    )
    assert total == res.committed == 17


def test_every_committed_store_drains_or_buffers(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for i in range(9):
            b.store(0x4000 + (i % 3) * 64, i)
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert sys_.stats["core0.sb.drained"] == 9
    assert sys_.stats["node0.stores.performed"] == 9


def test_run_ipc_stat_recorded(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for _ in range(20):
            b.alu()
        b.end()
        yield b.take()

    res, sys_ = run_single(tiny_config, prog)
    assert sys_.stats["run.ipc"] == pytest.approx(res.ipc)
    assert sys_.stats["run.events"] > 0
