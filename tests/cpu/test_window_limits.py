"""Window (ROB), width, and fetch-gating limits."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload


def run_one(config, fn, seed=0):
    cfg = dataclasses.replace(config, n_procs=1)
    sys_ = System(cfg, ScriptWorkload(fn), seed=seed)
    res = sys_.run(max_cycles=10_000_000, max_events=4_000_000)
    return res, sys_


def test_small_window_limits_mlp(tiny_config):
    """A tiny ROB cannot keep many misses in flight."""

    def prog(tid, config, rng):
        b = BlockBuilder()
        for i in range(12):
            b.load(0x10000 + i * 64, b.fresh())
            for _ in range(8):
                b.alu()
        b.end()
        yield b.take()

    small, _ = run_one(tiny_config.with_core(rob_size=8), prog)
    big, _ = run_one(tiny_config.with_core(rob_size=128), prog)
    assert small.cycles > big.cycles * 1.5


def test_width_bounds_throughput(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for _ in range(200):
            b.alu(latency=1)
        b.end()
        yield b.take()

    narrow, _ = run_one(tiny_config.with_core(width=1), prog)
    wide, _ = run_one(tiny_config.with_core(width=4), prog)
    # 200 independent ALUs: ~200 cycles at width 1, ~50 at width 4.
    assert narrow.cycles > wide.cycles * 2.5


def test_aggregate_ipc_bounded_by_total_width(tiny4_config):
    from repro.workloads.registry import get_benchmark

    res = System(
        tiny4_config, get_benchmark("radiosity", scale=0.02), seed=1
    ).run(max_cycles=20_000_000)
    assert res.ipc <= tiny4_config.core.width * tiny4_config.n_procs


def test_fetch_resumes_after_window_drain(tiny_config):
    """Window-full stalls resolve when the blocking miss returns."""

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.load(0x10000, b.fresh())  # long miss at the head
        for _ in range(60):  # more ops than an 8-entry window holds
            b.alu(latency=1)
        b.end()
        yield b.take()

    res, sys_ = run_one(tiny_config.with_core(rob_size=8), prog)
    assert sys_.cores[0].finished
    assert res.committed == 62


def test_per_core_ipc_cannot_exceed_width(tiny_config):
    def prog(tid, config, rng):
        b = BlockBuilder()
        for _ in range(400):
            b.alu(latency=1)
        b.end()
        yield b.take()

    res, _ = run_one(tiny_config.with_core(width=2), prog)
    assert res.ipc <= 2.0 + 0.01
