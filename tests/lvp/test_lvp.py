"""Load value prediction with tag-match invalid lines (paper §3)."""

import dataclasses

import pytest

from repro.common.config import LVPConfig, ProtocolKind, ValidatePolicy
from repro.common.stats import StatsRegistry
from repro.coherence.states import LineState
from repro.lvp.unit import LVPUnit
from repro.memory.cache import CacheLine
from tests.harness import MemHarness

ADDR = 0x10000


def lvp_harness(base_config, **proto):
    cfg = base_config.with_lvp(enabled=True)
    if proto:
        cfg = cfg.with_protocol(**proto)
    return MemHarness(cfg)


class TestCandidateSelection:
    def make_line(self, state, value=5):
        line = CacheLine(8)
        line.base = 0
        line.state = state
        line.data[2] = value
        return line

    def test_disabled_returns_none(self):
        unit = LVPUnit(LVPConfig(enabled=False), StatsRegistry().scoped("x"))
        assert unit.candidate(self.make_line(LineState.I), 2) is None

    def test_invalid_with_data_predicts(self):
        unit = LVPUnit(LVPConfig(enabled=True), StatsRegistry().scoped("x"))
        assert unit.candidate(self.make_line(LineState.I), 2) == 5

    def test_t_state_predicts_when_allowed(self):
        unit = LVPUnit(LVPConfig(enabled=True), StatsRegistry().scoped("x"))
        assert unit.candidate(self.make_line(LineState.T), 2) == 5
        unit2 = LVPUnit(
            LVPConfig(enabled=True, predict_in_t_state=False),
            StatsRegistry().scoped("x"),
        )
        assert unit2.candidate(self.make_line(LineState.T), 2) is None

    def test_valid_states_do_not_predict(self):
        unit = LVPUnit(LVPConfig(enabled=True), StatsRegistry().scoped("x"))
        for state in (LineState.S, LineState.M, LineState.E, LineState.O):
            assert unit.candidate(self.make_line(state), 2) is None

    def test_no_line_no_prediction(self):
        unit = LVPUnit(LVPConfig(enabled=True), StatsRegistry().scoped("x"))
        assert unit.candidate(None, 0) is None


class TestEndToEnd:
    def test_correct_prediction_verifies(self, tiny_config):
        h = lvp_harness(tiny_config)
        h.store(0, ADDR, 5)
        h.load(1, ADDR)  # P1 caches 5
        h.store(0, ADDR, 5 + 0)  # silent store... still invalidates? no
        # Make P1's copy invalid while keeping the value: P0 upgrades
        # writing the same value non-silently is impossible, so write a
        # new value then revert via plain stores (no MESTI here: the
        # line in P1 is plain I with data residue).
        h.store(0, ADDR, 6)
        h.store(0, ADDR, 5)
        kind, value, op = h.load(1, ADDR)
        assert kind == "spec"
        assert value == 5
        h.drain()
        assert op.verified and not op.squashed
        assert h.stats["node1.lvp.correct"] == 1

    def test_wrong_prediction_squashes(self, tiny_config):
        h = lvp_harness(tiny_config)
        h.store(0, ADDR, 5)
        h.load(1, ADDR)
        h.store(0, ADDR, 6)  # P1 invalid, residue 5, real value 6
        kind, value, op = h.load(1, ADDR)
        assert kind == "spec" and value == 5
        h.drain()
        assert op.squashed
        assert h.stats["node1.lvp.mispredictions"] == 1

    def test_false_sharing_capture(self, tiny_config):
        """Untouched-word changes must not squash the prediction (§3.2)."""
        h = lvp_harness(tiny_config)
        h.store(0, ADDR, 5)  # word 0
        h.load(1, ADDR)
        h.store(0, ADDR + 8, 99)  # P0 writes a DIFFERENT word
        kind, value, op = h.load(1, ADDR)  # P1 rereads word 0
        assert kind == "spec" and value == 5
        h.drain()
        assert op.verified  # word 0 unchanged: prediction stands

    def test_prediction_from_t_state_under_mesti(self, mesti_config):
        h = lvp_harness(mesti_config)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)  # P1 -> T(0)
        assert h.line_state(1, ADDR) is LineState.T
        h.store(0, ADDR, 0)  # reverts; validate may also fly
        kind, value, op = h.load(1, ADDR)
        # Either the validate already re-installed the line (hit) or
        # LVP predicts from T; both deliver 0.
        assert value == 0

    def test_no_prediction_without_residue(self, tiny_config):
        h = lvp_harness(tiny_config)
        kind, value, _ = h.load(1, ADDR)
        assert kind == "miss"  # cold: nothing to predict from

    def test_multiple_spec_loads_one_mshr(self, tiny_config):
        h = lvp_harness(tiny_config)
        h.store(0, ADDR, 5)
        h.store(0, ADDR + 8, 7)
        h.load(1, ADDR)
        h.store(0, ADDR + 16, 1)  # invalidate P1 via a third word
        op_a = h.new_op()
        kind_a, _, _ = h.nodes[1].load(ADDR, op_a)
        op_b = h.new_op()
        kind_b, _, _ = h.nodes[1].load(ADDR + 8, op_b)
        assert kind_a == "spec" and kind_b == "spec"
        h.drain()
        assert op_a.verified and op_b.verified

    def test_squash_targets_oldest_attached_op(self, tiny_config):
        h = lvp_harness(tiny_config)
        h.store(0, ADDR, 5)
        h.store(0, ADDR + 8, 7)
        h.load(1, ADDR)
        h.store(0, ADDR + 8, 8)  # word 1 will mispredict
        op_a = h.new_op()  # older, predicts word 0 (correct)
        h.nodes[1].load(ADDR, op_a)
        op_b = h.new_op()  # younger, predicts word 1 (wrong)
        h.nodes[1].load(ADDR + 8, op_b)
        h.drain()
        # The paper's single-index recovery squashes at the OLDEST
        # speculative op attached to the MSHR, even though only the
        # younger one mismatched.
        assert op_a.squashed
        assert not op_b.squashed  # only one squash callback is made
