"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tpc-b" in out and "emesti" in out and "figure7" in out


def test_run_cell(capsys):
    assert main(["run", "radiosity", "--technique", "emesti",
                 "--scale", "0.02", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "ipc" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "linpack"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "figure99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_chrome_trace(tmp_path, capsys):
    # The acceptance path: a traced run produces a valid Chrome trace.
    trace = tmp_path / "t.json"
    assert main(["run", "locks", "--technique", "emesti",
                 "--scale", "0.05", "--trace", str(trace),
                 "--trace-format", "chrome"]) == 0
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts), "Chrome trace timestamps must be monotonic"
    for event in events:
        # i/X are instants and durations; b/e are span async pairs and
        # s/f their flow (parent-link) arrows.
        assert event["ph"] in ("i", "X", "b", "e", "s", "f")
        assert isinstance(event["ts"], int)
    assert any(e["ph"] == "b" for e in events), "span events expected"
    out = capsys.readouterr().out
    assert "trace:" in out


def test_run_with_trace_filter_and_ring(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["run", "locks", "--technique", "emesti", "--scale", "0.05",
                 "--trace", str(trace), "--trace-filter", "kind=bus.grant",
                 "--trace-ring", "5"]) == 0
    lines = [json.loads(l) for l in trace.read_text().splitlines() if l]
    assert 0 < len(lines) <= 5
    assert all(e["kind"] == "bus.grant" for e in lines)


def test_run_with_profile(capsys):
    assert main(["run", "radiosity", "--scale", "0.02", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "component" in out and "TOTAL" in out


def test_report_command(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["run", "locks", "--technique", "emesti", "--scale", "0.05",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "by kind:" in out and "bus.grant" in out


def test_explain_live_gates_and_reports(capsys):
    assert main(["explain", "locks", "--technique", "emesti+lvp",
                 "--scale", "0.1", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "miss provenance" in out and "metrics reconciliation" in out
    assert "result: ok" in out


def test_explain_json_reconciles(capsys):
    assert main(["explain", "locks", "--technique", "emesti",
                 "--scale", "0.1", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["misses"]["attribution_rate"] >= 0.95
    assert all(row["ok"] for row in doc["reconciliation"])


def test_explain_offline_trace(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["explain", "locks", "--scale", "0.1",
                 "--save-trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["explain", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    # Offline there is no registry to reconcile against.
    assert "miss provenance" in out and "metrics reconciliation" not in out


def test_explain_line_drilldown(tmp_path, capsys):
    assert main(["explain", "locks", "--scale", "0.1",
                 "--line", "0x10080"]) == 0
    out = capsys.readouterr().out
    assert "0x10080" in out


def test_explain_without_benchmark_or_trace_errors(capsys):
    assert main(["explain"]) == 2
    assert "benchmark" in capsys.readouterr().err


def test_list_includes_extra_benchmarks(capsys):
    assert main(["list"]) == 0
    assert "locks" in capsys.readouterr().out


def test_quiet_and_verbose_exclusive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["-q", "-v", "list"])
