"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tpc-b" in out and "emesti" in out and "figure7" in out


def test_run_cell(capsys):
    assert main(["run", "radiosity", "--technique", "emesti",
                 "--scale", "0.02", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "ipc" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "linpack"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "figure99"])


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
