"""L1/L2 inclusion and dirty-data authority."""

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


@pytest.fixture
def h(tiny_config):
    return MemHarness(tiny_config)


def test_l1_subset_of_valid_l2(h):
    for i in range(12):
        h.load(0, ADDR + i * 64)
    l1 = h.nodes[0].l1
    l2 = h.controllers[0].l2
    for line in l1.resident_lines():
        if line.state.valid:
            peer = l2.lookup(line.base)
            assert peer is not None and peer.state.valid, hex(line.base)


def test_l2_data_is_authoritative_after_store(h):
    h.store(0, ADDR, 42)
    l2_line = h.controllers[0].lookup(ADDR)
    assert l2_line.data[0] == 42  # write-through from the L1 level
    assert l2_line.dirty_mask & 1


def test_snoop_sees_current_data_without_l1_sync(h):
    """A remote read right after a store must get the stored value —
    the design keeps the authoritative words at the L2."""
    h.store(0, ADDR, 7)
    assert h.load(1, ADDR)[1] == 7


def test_remote_invalidation_clears_l1_copy(h):
    h.store(0, ADDR, 1)
    assert h.nodes[0].l1.lookup(ADDR) is not None
    h.store(1, ADDR, 2)
    assert h.nodes[0].l1.lookup(ADDR) is None


def test_l1_dirty_bit_tracks_stores(h):
    h.load(0, ADDR)
    l1_line = h.nodes[0].l1.lookup(ADDR)
    assert l1_line.state is LineState.S
    h.store(0, ADDR, 5)
    assert h.nodes[0].l1.lookup(ADDR).state is LineState.M


def test_l1_capacity_eviction_keeps_l2_resident(h):
    h.store(0, ADDR, 9)
    l1 = h.nodes[0].l1
    stride = l1.config.num_sets * 64
    for i in range(1, l1.config.ways + 2):
        h.load(0, ADDR + i * stride)
    # The L1 may have displaced the dirty line; the L2 still owns it.
    l2_line = h.controllers[0].lookup(ADDR)
    assert l2_line is not None and l2_line.state is LineState.M
    assert l2_line.data[0] == 9
