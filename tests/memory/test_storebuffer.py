"""Store buffer."""

import pytest

from repro.memory.storebuffer import StoreBuffer, StoreEntry


def entry(addr, value, seq=0):
    return StoreEntry(addr=addr, value=value, seq=seq)


def test_fifo_order():
    sb = StoreBuffer(4)
    sb.push(entry(0, 1, 0))
    sb.push(entry(8, 2, 1))
    assert sb.head().addr == 0
    assert sb.pop().value == 1
    assert sb.pop().value == 2
    assert sb.empty


def test_capacity_enforced():
    sb = StoreBuffer(2)
    sb.push(entry(0, 1))
    sb.push(entry(8, 2))
    assert sb.full
    with pytest.raises(ValueError):
        sb.push(entry(16, 3))


def test_forward_returns_youngest_match():
    sb = StoreBuffer(4)
    sb.push(entry(0x100, 1, 0))
    sb.push(entry(0x200, 2, 1))
    sb.push(entry(0x100, 3, 2))
    assert sb.forward(0x100) == 3
    assert sb.forward(0x200) == 2
    assert sb.forward(0x300) is None


def test_len_and_head_empty():
    sb = StoreBuffer(2)
    assert len(sb) == 0
    assert sb.head() is None


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        StoreBuffer(0)
