"""MSHR file and speculative-delivery tracking."""

import pytest

from repro.memory.mshr import MSHRFile


class _Consumer:
    def __init__(self, seq):
        self.seq = seq


def test_allocate_and_release():
    f = MSHRFile(2)
    e = f.allocate(0x40, now=5)
    assert f.get(0x40) is e
    assert e.issued_at == 5
    assert f.outstanding() == 1
    assert f.release(0x40) is e
    assert f.get(0x40) is None


def test_full_detection():
    f = MSHRFile(2)
    f.allocate(0, 0)
    assert not f.full
    f.allocate(64, 0)
    assert f.full
    with pytest.raises(ValueError):
        f.allocate(128, 0)


def test_duplicate_allocation_rejected():
    f = MSHRFile(2)
    f.allocate(0, 0)
    with pytest.raises(ValueError):
        f.allocate(0, 0)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_waiters_accumulate():
    f = MSHRFile(1)
    e = f.allocate(0, 0)
    calls = []
    e.add_waiter(lambda data: calls.append(1))
    e.add_waiter(lambda data: calls.append(2))
    for w in e.waiters:
        w([0] * 8)
    assert calls == [1, 2]


def test_mismatched_deliveries_compares_only_accessed_words():
    f = MSHRFile(1)
    e = f.allocate(0, 0)
    e.record_speculation(0, 10, _Consumer(1))
    e.record_speculation(3, 30, _Consumer(2))
    arrived = [10, 99, 99, 30, 0, 0, 0, 0]  # untouched words differ
    assert e.mismatched_deliveries(arrived) == []
    arrived[3] = 31
    bad = e.mismatched_deliveries(arrived)
    assert len(bad) == 1 and bad[0].word_index == 3
