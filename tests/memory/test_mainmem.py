"""Main memory."""

import pytest

from repro.common.errors import SimulationError
from repro.memory.mainmem import MainMemory


def test_unwritten_lines_read_zero():
    mem = MainMemory(64)
    assert mem.read_line(0x1000) == [0] * 8
    assert mem.read_word(0x1000, 3) == 0


def test_write_then_read():
    mem = MainMemory(64)
    words = list(range(8))
    mem.write_line(0x40, words)
    assert mem.read_line(0x40) == words
    assert mem.read_word(0x40, 5) == 5


def test_read_returns_copy():
    mem = MainMemory(64)
    mem.write_line(0, [1] * 8)
    line = mem.read_line(0)
    line[0] = 99
    assert mem.read_line(0)[0] == 1


def test_unaligned_address_rejected():
    mem = MainMemory(64)
    with pytest.raises(SimulationError):
        mem.read_line(0x41)
    with pytest.raises(SimulationError):
        mem.write_line(0x8, [0] * 8)


def test_wrong_word_count_rejected():
    mem = MainMemory(64)
    with pytest.raises(SimulationError):
        mem.write_line(0, [0] * 7)


def test_touched_lines():
    mem = MainMemory(64)
    assert mem.touched_lines() == 0
    mem.write_line(0, [0] * 8)
    mem.write_line(64, [0] * 8)
    mem.write_line(0, [1] * 8)
    assert mem.touched_lines() == 2
