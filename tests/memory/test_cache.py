"""Set-associative cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.coherence.states import LineState
from repro.memory.cache import SetAssocCache


def make_cache(size=1024, ways=2, line=64):
    return SetAssocCache(CacheConfig(size, ways, line_size=line), "test")


def test_lookup_miss_returns_none():
    c = make_cache()
    assert c.lookup(0x1000) is None


def test_allocate_then_lookup():
    c = make_cache()
    line, evicted = c.allocate(0x1000)
    assert evicted is None
    assert c.lookup(0x1000) is line
    assert line.state is LineState.I
    assert line.data == [0] * 8


def test_allocate_resident_line_rejected():
    c = make_cache()
    c.allocate(0x1000)
    with pytest.raises(SimulationError):
        c.allocate(0x1000)


def test_set_conflict_evicts_lru():
    c = make_cache(size=256, ways=2)  # 2 sets of 2 ways
    step = 2 * 64  # same set every step
    a, _ = c.allocate(0x0000)
    b, _ = c.allocate(0x0000 + step)
    a.state = LineState.S
    b.state = LineState.S
    c.touch(a)  # a more recently used than b
    _, evicted = c.allocate(0x0000 + 2 * step)
    assert evicted is not None
    assert evicted.base == 0x0000 + step  # LRU victim


def test_invalid_lines_preferred_as_victims():
    c = make_cache(size=256, ways=2)
    step = 2 * 64
    a, _ = c.allocate(0x0000)
    b, _ = c.allocate(step)
    a.state = LineState.I  # stale residue (LVP food)
    b.state = LineState.M
    c.touch(a)  # even though a is more recently used...
    _, evicted = c.allocate(2 * step)
    assert evicted.base == 0x0000  # ...the invalid line goes first


def test_eviction_snapshot_preserves_data():
    c = make_cache(size=128, ways=1)
    line, _ = c.allocate(0x0000)
    line.state = LineState.M
    line.data[3] = 99
    line.dirty_mask = 1 << 3
    _, evicted = c.allocate(0x0000 + 2 * 64)  # only 2 sets; same set = +128
    if evicted is None:
        _, evicted = c.allocate(0x0000 + 4 * 64)
    assert evicted.base == 0x0000
    assert evicted.state is LineState.M
    assert evicted.data[3] == 99
    assert evicted.dirty


def test_evict_explicit():
    c = make_cache()
    line, _ = c.allocate(0x40)
    line.state = LineState.S
    view = c.evict(0x40)
    assert view.base == 0x40
    assert c.lookup(0x40) is None
    assert c.evict(0x40) is None


def test_victim_filter_vetoes():
    c = make_cache(size=128, ways=1)
    line, _ = c.allocate(0)
    line.state = LineState.M
    with pytest.raises(SimulationError, match="pinned"):
        c.allocate(128, victim_filter=lambda w: False)


def test_valid_line_count():
    c = make_cache()
    a, _ = c.allocate(0)
    b, _ = c.allocate(64)
    a.state = LineState.M
    b.state = LineState.T  # stale: not valid
    assert c.valid_line_count() == 1
    assert len(c) == 2


def test_resident_lines_iterates_all_tagged():
    c = make_cache()
    c.allocate(0)
    c.allocate(64)
    assert {line.base for line in c.resident_lines()} == {0, 64}


def test_predictor_fields_reset_on_eviction_reuse():
    c = make_cache(size=128, ways=1)
    line, _ = c.allocate(0)
    line.pred_conf = 7
    line.pred_state = 2
    line.state = LineState.S
    c.allocate(128)  # evicts base 0
    new_line, _ = c.allocate(256)  # reuses a way
    assert new_line.pred_conf == 0
    assert new_line.pred_state == 0


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_cache_never_exceeds_capacity_and_keeps_unique_tags(addrs):
    c = make_cache(size=512, ways=2)
    for i in addrs:
        base = i * 64
        if c.lookup(base) is None:
            line, _ = c.allocate(base)
            line.state = LineState.S
    assert len(c) <= c.config.num_lines
    bases = [line.base for line in c.resident_lines()]
    assert len(bases) == len(set(bases))
    # Every resident line is found by lookup at its own base.
    for base in bases:
        assert c.lookup(base).base == base
