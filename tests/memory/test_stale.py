"""Stale storage and the L1-Mirror detector (Figure 5)."""

from repro.common.config import CacheConfig
from repro.common.stats import StatsRegistry
from repro.memory.stale import ExplicitStaleDetector, StaleStorage


def make_detector(stale_bytes=2 * 64, l1_lines=4):
    stats = StatsRegistry()
    l1 = CacheConfig(l1_lines * 64, 1, line_size=64)
    return ExplicitStaleDetector(l1, stale_bytes, stats.scoped("stale")), stats


def words(x):
    return [x] * 8


class TestStaleStorage:
    def test_put_get(self):
        s = StaleStorage(2)
        s.put(0, words(1))
        assert s.get(0) == words(1)
        assert s.get(64) is None

    def test_lru_eviction(self):
        s = StaleStorage(2)
        s.put(0, words(1))
        s.put(64, words(2))
        s.get(0)  # refresh 0
        s.put(128, words(3))  # evicts 64
        assert s.get(64) is None
        assert s.get(0) == words(1)

    def test_zero_capacity_stores_nothing(self):
        s = StaleStorage(0)
        s.put(0, words(1))
        assert s.get(0) is None

    def test_drop(self):
        s = StaleStorage(2)
        s.put(0, words(1))
        s.drop(0)
        assert s.get(0) is None

    def test_get_returns_copy(self):
        s = StaleStorage(1)
        s.put(0, words(1))
        got = s.get(0)
        got[0] = 99
        assert s.get(0) == words(1)


class TestExplicitDetector:
    def test_clean_fill_captures_candidate(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        assert det.candidate(0) == words(5)

    def test_dirty_fill_without_banked_candidate_has_none(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=True)
        assert det.candidate(0) is None

    def test_candidate_survives_dirty_eviction_via_stale_storage(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        det.on_l1_evict(0, was_dirty=True)
        assert det.candidate(0) is None  # not mirrored anymore
        det.on_l1_fill(0, words(9), l2_was_dirty=True)  # refill of dirty line
        assert det.candidate(0) == words(5)  # recovered from stale storage

    def test_clean_eviction_does_not_bank(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        det.on_l1_evict(0, was_dirty=False)
        det.on_l1_fill(0, words(7), l2_was_dirty=True)
        assert det.candidate(0) is None

    def test_zero_capacity_models_inclusive_only_detection(self):
        det, _ = make_detector(stale_bytes=0)
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        assert det.candidate(0) == words(5)  # detectable while resident
        det.on_l1_evict(0, was_dirty=True)
        det.on_l1_fill(0, words(9), l2_was_dirty=True)
        assert det.candidate(0) is None  # lost across the writeback

    def test_invalidation_drops_everything(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        det.on_l1_evict(0, was_dirty=True)
        det.on_invalidate(0)
        det.on_l1_fill(0, words(9), l2_was_dirty=True)
        assert det.candidate(0) is None

    def test_visibility_rebases_candidate(self):
        det, _ = make_detector()
        det.on_l1_fill(0, words(5), l2_was_dirty=False)
        det.on_visibility(0, words(8))
        assert det.candidate(0) == words(8)

    def test_mirror_capacity_is_bounded(self):
        det, _ = make_detector(l1_lines=2)
        for i in range(4):
            det.on_l1_fill(i * 64, words(i), l2_was_dirty=False)
        assert det.candidate(0) is None  # evicted from the mirror
        assert det.candidate(3 * 64) == words(3)

    def test_mirror_stats(self):
        det, stats = make_detector()
        det.on_l1_fill(0, words(1), l2_was_dirty=False)
        det.on_l1_fill(64, words(2), l2_was_dirty=True)
        assert stats["stale.mirror.captured"] == 1
        assert stats["stale.mirror.lost"] == 1
