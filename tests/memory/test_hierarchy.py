"""NodeMemory access paths: prefetch, atomic RMW, SLE apply, latencies."""

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


@pytest.fixture
def h(tiny_config):
    return MemHarness(tiny_config)


class TestLatencies:
    def test_l1_hit_cheapest(self, h):
        h.load(0, ADDR)  # fill
        op = h.new_op()
        kind, lat, _ = h.nodes[0].load(ADDR, op)
        assert kind == "hit"
        assert lat == h.config.l1.latency

    def test_l2_hit_additive(self, h):
        h.load(0, ADDR)
        # Evict from L1 only: walk the L1 set.
        l1 = h.nodes[0].l1
        stride = l1.config.num_sets * 64
        for i in range(1, l1.config.ways + 1):
            h.load(0, ADDR + i * stride * (h.controllers[0].l2.config.num_sets // l1.config.num_sets))
        # The line may or may not have left L1 depending on mapping;
        # force it directly.
        h.nodes[0].l1.evict(ADDR)
        op = h.new_op()
        kind, lat, _ = h.nodes[0].load(ADDR, op)
        assert kind == "hit"
        assert lat == h.config.l1.latency + h.config.l2.latency


class TestPrefetchExclusive:
    def test_prefetch_from_invalid_gets_m(self, h):
        done = []
        res = h.nodes[0].prefetch_exclusive(ADDR, lambda: done.append(1))
        assert res is None
        h.drain()
        assert done
        assert h.line_state(0, ADDR) is LineState.M

    def test_prefetch_upgrades_shared(self, h):
        h.load(0, ADDR)
        h.load(1, ADDR)
        done = []
        h.nodes[0].prefetch_exclusive(ADDR, lambda: done.append(1))
        h.drain()
        assert h.line_state(0, ADDR) is LineState.M
        assert h.line_state(1, ADDR) is LineState.I

    def test_prefetch_owned_is_synchronous(self, h):
        h.store(0, ADDR, 1)
        res = h.nodes[0].prefetch_exclusive(ADDR, lambda: None)
        assert res is not None  # already M: no bus work


class TestAtomicRmw:
    def test_cas_success(self, h):
        results = []
        h.nodes[0].atomic_rmw(ADDR, 0, 42, results.append)
        h.drain()
        assert results == [True]
        assert h.load(0, ADDR)[1] == 42

    def test_cas_failure_leaves_value(self, h):
        h.store(0, ADDR, 7)
        results = []
        h.nodes[1].atomic_rmw(ADDR, 0, 42, results.append)
        h.drain()
        assert results == [False]
        assert h.load(1, ADDR)[1] == 7

    def test_cas_synchronous_when_owned(self, h):
        h.store(0, ADDR, 0)
        results = []
        h.nodes[0].atomic_rmw(ADDR, 0, 9, results.append)
        assert results == [True]  # no drain needed

    def test_contended_cas_single_winner(self, tiny4_config):
        h = MemHarness(tiny4_config)
        results = [[] for _ in range(4)]
        for p in range(4):
            h.nodes[p].atomic_rmw(ADDR, 0, p + 1, results[p].append)
        h.drain()
        assert sum(1 for r in results if r and r[0]) == 1


class TestAtomicAdd:
    def test_add_returns_new_value(self, h):
        out = []
        h.nodes[0].atomic_add(ADDR, 5, out.append)
        h.drain()
        assert out == [5]
        h.nodes[0].atomic_add(ADDR, 3, out.append)
        h.drain()
        assert out == [5, 8]

    def test_adds_from_all_nodes_sum_exactly(self, tiny4_config):
        h = MemHarness(tiny4_config)
        for p in range(4):
            for _ in range(3):
                h.nodes[p].atomic_add(ADDR, 1, lambda v: None)
        h.drain()
        assert h.load(0, ADDR)[1] == 12


class TestApplyStoreNow:
    def test_requires_ownership(self, h):
        with pytest.raises(Exception):
            h.nodes[0].apply_store_now(ADDR, 1, 0)

    def test_applies_with_ownership(self, h):
        h.store(0, ADDR, 0)
        h.nodes[0].apply_store_now(ADDR, 5, 0)
        assert h.load(0, ADDR)[1] == 5

    def test_counts_silent_stores(self, h):
        h.store(0, ADDR, 5)
        before = h.stats["node0.stores.update_silent"]
        h.nodes[0].apply_store_now(ADDR, 5, 0)
        assert h.stats["node0.stores.update_silent"] == before + 1


class TestTraceHook:
    def test_trace_callback_fires(self, h):
        seen = []
        h.nodes[0].trace = lambda n, k, a, v: seen.append((n, k, a, v))
        h.load(0, ADDR)
        h.store(0, ADDR + 8, 3)
        kinds = [k for _, k, _, _ in seen]
        assert "load" in kinds and "store" in kinds
