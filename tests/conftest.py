"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    ProtocolConfig,
    ProtocolKind,
    ValidatePolicy,
    scaled_config,
)


@pytest.fixture
def tiny_config() -> MachineConfig:
    """A small, fast 2-processor machine for unit/integration tests."""
    return MachineConfig(
        n_procs=2,
        core=CoreConfig(width=2, rob_size=32, store_buffer=8, mshrs=4),
        l1=CacheConfig(1024, 2, latency=1),
        l2=CacheConfig(8192, 4, latency=4),
        bus=BusConfig(addr_latency=10, addr_occupancy=2,
                      data_latency=40, data_occupancy=4),
        protocol=ProtocolConfig(kind=ProtocolKind.MOESI),
    )


@pytest.fixture
def tiny4_config(tiny_config) -> MachineConfig:
    """The tiny machine with four processors."""
    return dataclasses.replace(tiny_config, n_procs=4)


def with_protocol(config: MachineConfig, kind: ProtocolKind, **kw) -> MachineConfig:
    """Helper: clone a config with a different protocol."""
    return config.with_protocol(kind=kind, **kw)


@pytest.fixture
def mesti_config(tiny_config) -> MachineConfig:
    return tiny_config.with_protocol(
        kind=ProtocolKind.MOESTI, validate_policy=ValidatePolicy.ALWAYS
    )


@pytest.fixture
def emesti_config(tiny_config) -> MachineConfig:
    return tiny_config.with_protocol(
        kind=ProtocolKind.MOESTI, enhanced=True,
        validate_policy=ValidatePolicy.PREDICTOR,
    )


@pytest.fixture
def experiment_config() -> MachineConfig:
    """The default experiment machine (scaled Table 1 ratios)."""
    return scaled_config()
