"""The ``repro-sim check`` surface: exit codes and JSON shape."""

import json

import pytest

from repro.cli import build_parser, main


def test_check_clean_protocol_exits_zero(capsys):
    assert main(["check", "--protocol", "mesti", "--interconnect", "bus"]) == 0
    out = capsys.readouterr().out
    assert "ok: no violations" in out
    assert "states" in out and "coverage" in out
    assert "litmus" in out
    assert out.rstrip().endswith("result: ok")


def test_check_mutated_protocol_exits_one(capsys):
    code = main([
        "check", "--protocol", "moesti", "--interconnect", "bus",
        "--mutate", "validate-installs-m",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "VIOLATION swmr" in out
    assert "counterexample" in out
    assert "concrete replay: FAILED" in out


def test_check_json_for_ci(capsys):
    assert main([
        "check", "--protocol", "mesi", "--interconnect", "bus",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    (run,) = doc["runs"]
    assert run["protocol"] == "MESI"
    assert run["complete"] is True
    assert run["states"] > 0
    assert run["coverage"]["missing"] == []
    assert all(r["ok"] for r in run["litmus"])


def test_check_json_mutated_carries_trace_and_replay(capsys):
    code = main([
        "check", "--protocol", "moesti", "--interconnect", "bus",
        "--mutate", "fill-exclusive-on-shared-read", "--format", "json",
    ])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    (run,) = doc["runs"]
    (violation,) = run["violations"]
    assert violation["kind"] == "swmr"
    assert violation["trace"]
    assert run["replay"]["ok"] is False
    assert run["replay"]["failed_at"] == len(violation["trace"]) - 1


def test_check_mutated_json_carries_mutation_record(capsys):
    # The record schema is shared with the fuzz campaign's mutation
    # iterations (repro.fuzz.report.mutation_record).
    code = main([
        "check", "--protocol", "mesti", "--interconnect", "bus",
        "--mutate", "t-ignores-flush", "--format", "json",
    ])
    assert code == 1
    (run,) = json.loads(capsys.readouterr().out)["runs"]
    record = run["mutation"]
    assert record["name"] == "t-ignores-flush"
    assert record["seeded"] is True
    assert record["detected"] is True
    assert record["caught_as"] == "t-discipline"
    assert record["trace_len"] >= 1
    assert record["rows_reached"] == len(record["rows"]) > 0


def test_check_escaped_mutation_exits_one(capsys, monkeypatch):
    # A mutation the checker misses is a failure of the verification
    # loop itself, not a success.
    from repro.verify import mutations

    monkeypatch.setitem(
        mutations.MUTATIONS, "no-op", lambda protocol: None,
    )
    code = main([
        "check", "--protocol", "mesi", "--interconnect", "bus",
        "--mutate", "no-op",
    ])
    assert code == 1
    assert "ESCAPED" in capsys.readouterr().out


def test_check_bad_protocol_exits_two():
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["check", "--protocol", "mosi"])
    assert exc.value.code == 2


def test_check_bad_mutation_exits_two(capsys):
    assert main(["check", "--protocol", "mesi", "--mutate", "nope"]) == 2
    assert "error" in capsys.readouterr().err


def test_check_temporal_mutation_on_plain_protocol_exits_two():
    assert main([
        "check", "--protocol", "mesi", "--interconnect", "bus",
        "--mutate", "t-ignores-flush",
    ]) == 2


def test_check_bounded_run_flagged(capsys):
    assert main([
        "check", "--protocol", "mesi", "--interconnect", "bus",
        "--depth", "2", "--no-litmus",
    ]) == 0
    assert "NOT exhaustive" in capsys.readouterr().out


def test_run_check_invariants_flag(capsys):
    assert main([
        "run", "locks", "--technique", "emesti", "--scale", "0.05",
        "--check-invariants",
    ]) == 0
    out = capsys.readouterr().out
    assert "invariant_checks" in out
    line = next(l for l in out.splitlines() if "invariant_checks" in l)
    assert float(line.split(":")[1]) > 0
