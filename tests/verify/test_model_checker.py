"""Exhaustive model checking of the real protocol tables.

These are the subsystem's headline guarantees: every shipped protocol,
on both interconnects, explores its full 3-node state space with zero
invariant violations, zero deadlocks, and every reachable transition-
table row exercised.  A regression in any table, in the directory's
bookkeeping, or in the validate discipline turns one of these green
runs red with a concrete counterexample trace.
"""

import pytest

from repro.common.config import InterconnectKind
from repro.verify.checker import ModelChecker
from repro.verify.model import AbstractMachine, ProtocolSpec

PROTOCOLS = list(ProtocolSpec.NAMES)
INTERCONNECTS = [InterconnectKind.BUS, InterconnectKind.DIRECTORY]


def check(name, interconnect, n_nodes=3, **kw):
    machine = AbstractMachine(
        ProtocolSpec(name).make_logic(),
        n_nodes=n_nodes,
        interconnect=interconnect,
    )
    return ModelChecker(machine, **kw).run()


@pytest.mark.parametrize("interconnect", INTERCONNECTS, ids=("bus", "directory"))
@pytest.mark.parametrize("name", PROTOCOLS)
def test_protocol_clean_and_fully_covered(name, interconnect):
    result = check(name, interconnect)
    assert result.ok, result.violations[0].describe()
    assert result.complete
    assert result.states > 0 and result.transitions > result.states
    cov = result.coverage
    assert cov["missing"] == [], cov["missing"]
    assert cov["unexpected"] == [], cov["unexpected"]
    assert cov["rows_exercised"] == cov["rows_reachable"]


def test_temporal_protocols_reach_t_rows():
    # The T machinery is actually exercised, not vacuously absent.
    result = check("emesti", InterconnectKind.BUS)
    exercised = {tuple(r["row"]) for r in result.coverage["exercised"]}
    assert ("remote", "T", "Validate") in exercised
    assert ("local", "M", "PrWr.Validate") in exercised


def test_symmetry_reduction_preserves_reachability():
    # Same transition-row coverage with and without the reduction; far
    # fewer stored states with it.
    with_sym = check("mesti", InterconnectKind.BUS, n_nodes=2)
    without = check("mesti", InterconnectKind.BUS, n_nodes=2, symmetry=False)
    assert with_sym.ok and without.ok
    assert with_sym.states < without.states
    rows = lambda r: {tuple(x["row"]) for x in r.coverage["exercised"]}
    assert rows(with_sym) == rows(without)


def test_bounded_run_reports_incomplete():
    result = check("mesi", InterconnectKind.BUS, max_depth=2)
    assert result.ok
    assert not result.complete
    assert result.depth <= 2


def test_two_node_model_is_tiny_and_clean():
    for name in PROTOCOLS:
        result = check(name, InterconnectKind.BUS, n_nodes=2)
        assert result.ok and result.complete
        assert result.states < 200
