"""Litmus suite: exact allowed-outcome sets, abstract and concrete.

Outcome sets are asserted by *equality* — an extra outcome is a broken
protocol, a missing one is an over-restrictive model.  The key claim
for the paper's protocols: the temporal-silence machinery changes no
outcome set (architecturally invisible), including the lock-handoff
test where a validate may only ever re-install the reverted value.
"""

import pytest

from repro.common.config import InterconnectKind
from repro.verify.litmus import LITMUS_TESTS, LitmusRunner
from repro.verify.model import AbstractMachine, ProtocolSpec
from repro.verify.replay import ConcreteReplayer

PROTOCOLS = list(ProtocolSpec.NAMES)
INTERCONNECTS = [InterconnectKind.BUS, InterconnectKind.DIRECTORY]


@pytest.mark.parametrize("interconnect", INTERCONNECTS, ids=("bus", "directory"))
@pytest.mark.parametrize("name", PROTOCOLS)
def test_outcome_sets_exact(name, interconnect):
    for result in LitmusRunner(ProtocolSpec(name), interconnect).run_all():
        assert result.ok, (
            f"{result.test.name} on {name}/{result.interconnect}: "
            f"forbidden={sorted(result.forbidden)} "
            f"unreached={sorted(result.unreached)}"
        )


def test_temporal_silence_is_architecturally_invisible():
    # T-protocols must produce byte-identical outcome sets to MESI.
    base = {
        r.test.name: frozenset(r.outcomes)
        for r in LitmusRunner(ProtocolSpec("mesi")).run_all()
    }
    for name in ("mesti", "emesti"):
        for r in LitmusRunner(ProtocolSpec(name)).run_all():
            assert frozenset(r.outcomes) == base[r.test.name]


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_witness_traces_replay_concretely(test):
    """Every abstract witness interleaving reproduces on the real system."""
    spec = ProtocolSpec("emesti")
    machine = AbstractMachine(
        spec.make_logic(),
        n_nodes=test.n_nodes,
        n_lines=test.n_lines,
        n_words=test.n_words,
    )
    result = LitmusRunner(spec).run_test(test)
    for outcome, trace in result.outcomes.items():
        # Abstract load values along the witness trace, in trace order.
        state = machine.initial()
        abstract_loads = []
        for event in trace:
            state, value = machine.apply(state, event)
            if event[0] == "load":
                abstract_loads.append(value)
        concrete = ConcreteReplayer(spec, n_nodes=test.n_nodes).replay(trace)
        assert concrete.ok, f"{test.name} {outcome}: {concrete.error}"
        assert concrete.loads == abstract_loads, (
            f"{test.name} {outcome}: abstract {abstract_loads} "
            f"!= concrete {concrete.loads}"
        )
