"""Symmetry-reduction contracts: bus sorting, directory cap, big buses.

The bus canonicalizer sorts node rows (bus states carry no node-index
cross references, so the minimum over all permutations *is* the sorted
tuple); the directory canonicalizer must sweep permutations and is
therefore capped at :data:`MAX_SYMMETRY_NODES` — past that the
constructor refuses loudly instead of silently thrashing on n!
permutations per stored state.
"""

from __future__ import annotations

import pytest

from repro.common.config import InterconnectKind
from repro.verify.checker import MAX_SYMMETRY_NODES, ModelChecker
from repro.verify.model import AbstractMachine, ProtocolSpec


def machine(name="mesi", n_nodes=3,
            interconnect=InterconnectKind.BUS) -> AbstractMachine:
    return AbstractMachine(
        ProtocolSpec(name).make_logic(),
        n_nodes=n_nodes,
        interconnect=interconnect,
    )


class TestDirectoryCap:
    def test_over_cap_refused_with_symmetry(self):
        with pytest.raises(ValueError, match="symmetry"):
            ModelChecker(machine(
                n_nodes=MAX_SYMMETRY_NODES + 1,
                interconnect=InterconnectKind.DIRECTORY,
            ))

    def test_over_cap_allowed_without_symmetry(self):
        checker = ModelChecker(
            machine(
                n_nodes=MAX_SYMMETRY_NODES + 1,
                interconnect=InterconnectKind.DIRECTORY,
            ),
            symmetry=False,
            max_states=500,
        )
        result = checker.run()
        assert result.ok
        assert not result.complete  # bounded, but it ran

    def test_at_cap_allowed_with_symmetry(self):
        checker = ModelChecker(
            machine(
                n_nodes=MAX_SYMMETRY_NODES,
                interconnect=InterconnectKind.DIRECTORY,
            ),
            max_states=500,
        )
        assert checker.run().ok


class TestBusCanonicalization:
    def test_bus_has_no_node_cap(self):
        # Sorting is O(n log n); 8-node bus machines must construct
        # and explore (bounded) without complaint.
        checker = ModelChecker(machine(n_nodes=8), max_states=2000)
        result = checker.run()
        assert result.ok
        assert result.states > 0

    def test_sorted_canonicalization_matches_permutation_minimum(self):
        # Ground truth on a 3-node bus: canonical keys computed by the
        # sort must equal the explicit min over all node permutations.
        from itertools import permutations

        checker = ModelChecker(machine(name="mesti", n_nodes=3),
                               max_states=200)
        plain = ModelChecker(machine(name="mesti", n_nodes=3),
                             symmetry=False, max_states=200)

        seen = []
        original = checker._canonical

        def recording(state):
            seen.append(state)
            return original(state)

        checker._canonical = recording
        checker.run()
        assert seen
        for state in seen[:50]:
            nodes = state[0]
            sorted_key = checker._canonical(state)[0][0]
            explicit = min(
                tuple(
                    plain._canonical(
                        (tuple(nodes[i] for i in perm),) + state[1:]
                    )[0][0]
                )
                for perm in permutations(range(len(nodes)))
            )
            assert sorted_key == explicit

    def test_reduction_agrees_with_plain_search_on_violations(self):
        # A buggy protocol must be caught identically with and without
        # the reduction — same violation kind, both non-ok.
        from repro.verify.mutations import apply_mutation

        logic = apply_mutation(
            ProtocolSpec("mesti").make_logic(), "t-ignores-flush"
        )

        def run(symmetry):
            m = AbstractMachine(logic, n_nodes=3)
            return ModelChecker(m, symmetry=symmetry).run()

        with_sym, without = run(True), run(False)
        assert not with_sym.ok and not without.ok
        assert (with_sym.violations[0].kind
                == without.violations[0].kind == "t-discipline")
