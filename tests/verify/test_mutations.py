"""Seeded protocol bugs: the checker finds them, the replay confirms.

Mutation testing in both directions closes the loop on the abstraction:

* every seeded bug produces an abstract counterexample (the checker is
  not vacuous);
* replaying an SWMR counterexample on the *concrete* simulator trips
  the runtime :class:`~repro.coherence.validation.CoherenceChecker` at
  the same event with the same invariant (the abstraction matches the
  machine we actually simulate);
* clean traces replay cleanly with the model-predicted load values.
"""

import pytest

from repro.common.config import InterconnectKind
from repro.verify.checker import ModelChecker
from repro.verify.model import AbstractMachine, ProtocolSpec
from repro.verify.mutations import MUTATIONS, TEMPORAL_ONLY, apply_mutation
from repro.verify.replay import ConcreteReplayer


def checked(name, mutate, **kw):
    logic = apply_mutation(ProtocolSpec(name).make_logic(), mutate)
    return ModelChecker(AbstractMachine(logic, n_nodes=3), **kw).run()


@pytest.mark.parametrize("mutate", sorted(MUTATIONS))
def test_every_mutation_is_caught(mutate):
    result = checked("moesti", mutate)
    assert not result.ok
    v = result.violations[0]
    assert v.trace, "counterexample must carry a reproducing trace"
    assert len(v.trace) <= 4, "BFS should find a minimal trace"


@pytest.mark.parametrize(
    "mutate", ["validate-installs-m", "fill-exclusive-on-shared-read"]
)
def test_swmr_counterexample_replays_identically(mutate):
    """The abstract violation reproduces on the real system, same event."""
    spec = ProtocolSpec("moesti")
    result = checked("moesti", mutate)
    v = result.violations[0]
    assert v.kind == "swmr"
    outcome = ConcreteReplayer(spec, mutate=mutate).replay(v.trace)
    assert not outcome.ok
    # The concrete CoherenceChecker raises at the very event whose
    # abstract application violated SWMR.
    assert outcome.failed_at == len(v.trace) - 1
    assert "M/E owner" in outcome.error


def test_t_ignores_flush_caught_abstractly():
    # This bug corrupts the *saved* value of a T copy; the abstract
    # checker sees it against the last-globally-visible shadow.
    result = checked("moesti", "t-ignores-flush")
    assert result.violations[0].kind == "t-discipline"


@pytest.mark.parametrize("name", ["mesti", "moesti", "emesti"])
def test_t_ignores_flush_counterexample_replays_concretely(name):
    """Regression for the fuzz campaign's headline find.

    The runtime CoherenceChecker used to compare T copies only against
    each other, so a *lone* rotten T copy (exactly what this mutation
    produces with one sharer) replayed clean and the campaign flagged a
    replay-divergence.  The checker now holds every T copy to the last
    globally visible value.
    """
    spec = ProtocolSpec(name)
    result = checked(name, "t-ignores-flush")
    v = result.violations[0]
    assert v.kind == "t-discipline"
    outcome = ConcreteReplayer(
        spec, mutate="t-ignores-flush"
    ).replay(v.trace)
    assert not outcome.ok
    assert "globally visible" in outcome.error


def test_apply_mutation_leaves_argument_untouched():
    """Regression: the mutation must not leak into the caller's tables.

    ``apply_mutation`` once patched the passed instance in place; a
    fuzz loop that checked a mutant then reused the 'clean' logic
    inherited the bug.  The argument must keep pristine behavior after
    the call, decision for decision.
    """
    from repro.coherence.messages import SnoopResult, TxnKind
    from repro.coherence.states import LineState

    logic = ProtocolSpec("mesti").make_logic()
    pristine = ProtocolSpec("mesti").make_logic()
    mutated = apply_mutation(logic, "fill-exclusive-on-shared-read")
    assert mutated is not logic

    shared = SnoopResult()
    shared.shared = True
    assert (logic.fill_state(TxnKind.READ, shared)
            is pristine.fill_state(TxnKind.READ, shared)
            is LineState.S)
    assert mutated.fill_state(TxnKind.READ, shared) is LineState.E

    mutated_v = apply_mutation(logic, "validate-installs-m")
    assert (logic.revalidated_state()
            is pristine.revalidated_state())
    assert mutated_v.revalidated_state() is LineState.M


def test_unknown_mutation_rejected():
    with pytest.raises(ValueError):
        apply_mutation(ProtocolSpec("mesi").make_logic(), "no-such-bug")


@pytest.mark.parametrize("mutate", sorted(TEMPORAL_ONLY))
def test_temporal_mutations_rejected_on_plain_protocols(mutate):
    with pytest.raises(ValueError):
        apply_mutation(ProtocolSpec("moesi").make_logic(), mutate)


@pytest.mark.parametrize(
    "interconnect",
    [InterconnectKind.BUS, InterconnectKind.DIRECTORY],
    ids=("bus", "directory"),
)
def test_clean_trace_replays_clean(interconnect):
    spec = ProtocolSpec("emesti")
    trace = (
        ("store", 0, 0, 0, 1),
        ("load", 1, 0, 0),
        ("evict", 0, 0),
        ("load", 2, 0, 0),
    )
    outcome = ConcreteReplayer(spec, interconnect=interconnect).replay(trace)
    assert outcome.ok, outcome.error
    assert outcome.loads == [1, 1]
    assert outcome.checks > 0
    assert outcome.divergences == []
