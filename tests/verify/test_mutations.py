"""Seeded protocol bugs: the checker finds them, the replay confirms.

Mutation testing in both directions closes the loop on the abstraction:

* every seeded bug produces an abstract counterexample (the checker is
  not vacuous);
* replaying an SWMR counterexample on the *concrete* simulator trips
  the runtime :class:`~repro.coherence.validation.CoherenceChecker` at
  the same event with the same invariant (the abstraction matches the
  machine we actually simulate);
* clean traces replay cleanly with the model-predicted load values.
"""

import pytest

from repro.common.config import InterconnectKind
from repro.verify.checker import ModelChecker
from repro.verify.model import AbstractMachine, ProtocolSpec
from repro.verify.mutations import MUTATIONS, TEMPORAL_ONLY, apply_mutation
from repro.verify.replay import ConcreteReplayer


def checked(name, mutate, **kw):
    logic = apply_mutation(ProtocolSpec(name).make_logic(), mutate)
    return ModelChecker(AbstractMachine(logic, n_nodes=3), **kw).run()


@pytest.mark.parametrize("mutate", sorted(MUTATIONS))
def test_every_mutation_is_caught(mutate):
    result = checked("moesti", mutate)
    assert not result.ok
    v = result.violations[0]
    assert v.trace, "counterexample must carry a reproducing trace"
    assert len(v.trace) <= 4, "BFS should find a minimal trace"


@pytest.mark.parametrize(
    "mutate", ["validate-installs-m", "fill-exclusive-on-shared-read"]
)
def test_swmr_counterexample_replays_identically(mutate):
    """The abstract violation reproduces on the real system, same event."""
    spec = ProtocolSpec("moesti")
    result = checked("moesti", mutate)
    v = result.violations[0]
    assert v.kind == "swmr"
    outcome = ConcreteReplayer(spec, mutate=mutate).replay(v.trace)
    assert not outcome.ok
    # The concrete CoherenceChecker raises at the very event whose
    # abstract application violated SWMR.
    assert outcome.failed_at == len(v.trace) - 1
    assert "M/E owner" in outcome.error


def test_t_ignores_flush_caught_abstractly():
    # This bug corrupts the *saved* value of a T copy; the abstract
    # checker sees it against the last-globally-visible shadow.  (The
    # concrete runtime checker can only compare T copies against each
    # other, so this one is exactly the class of bug that needs the
    # model checker.)
    result = checked("moesti", "t-ignores-flush")
    assert result.violations[0].kind == "t-discipline"


def test_unknown_mutation_rejected():
    with pytest.raises(ValueError):
        apply_mutation(ProtocolSpec("mesi").make_logic(), "no-such-bug")


@pytest.mark.parametrize("mutate", sorted(TEMPORAL_ONLY))
def test_temporal_mutations_rejected_on_plain_protocols(mutate):
    with pytest.raises(ValueError):
        apply_mutation(ProtocolSpec("moesi").make_logic(), mutate)


@pytest.mark.parametrize(
    "interconnect",
    [InterconnectKind.BUS, InterconnectKind.DIRECTORY],
    ids=("bus", "directory"),
)
def test_clean_trace_replays_clean(interconnect):
    spec = ProtocolSpec("emesti")
    trace = (
        ("store", 0, 0, 0, 1),
        ("load", 1, 0, 0),
        ("evict", 0, 0),
        ("load", 2, 0, 0),
    )
    outcome = ConcreteReplayer(spec, interconnect=interconnect).replay(trace)
    assert outcome.ok, outcome.error
    assert outcome.loads == [1, 1]
    assert outcome.checks > 0
    assert outcome.divergences == []
