"""Property-based invariants over the directory interconnect."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import InterconnectKind, ProtocolKind, ValidatePolicy
from repro.coherence.states import LineState
from tests.coherence.test_directory import DirectoryHarness

LINES = [0x10000, 0x10040]
WORDS = [0, 5]

accesses = st.lists(
    st.tuples(
        st.sampled_from(["load", "store"]),
        st.integers(0, 2),
        st.integers(0, len(LINES) - 1),
        st.integers(0, len(WORDS) - 1),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=40,
)


def run_directory_sequence(h, seq):
    shadow: dict = {}
    for kind, proc, line_idx, word_idx, value in seq:
        base = LINES[line_idx]
        widx = WORDS[word_idx]
        addr = base + widx * 8
        if kind == "load":
            _, observed, _ = h.load(proc, addr, spec=False)
            assert observed == shadow.get((base, widx), 0)
        else:
            h.store(proc, addr, value)
            shadow[(base, widx)] = value
        h.drain()
        # Single-writer + value agreement across valid copies.
        for b in LINES:
            writers = []
            valid_values = set()
            for ctrl in h.controllers:
                line = ctrl.lookup(b)
                if line is None:
                    continue
                if line.state in (LineState.M, LineState.E):
                    writers.append(ctrl.node_id)
                if line.state.valid:
                    valid_values.add(tuple(line.data))
            assert len(writers) <= 1
            assert len(valid_values) <= 1


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_directory_moesi_invariants(tiny_config, seq):
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    )
    run_directory_sequence(DirectoryHarness(cfg), seq)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_directory_emesti_invariants(tiny_config, seq):
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    ).with_protocol(
        kind=ProtocolKind.MOESTI, enhanced=True,
        validate_policy=ValidatePolicy.PREDICTOR,
    )
    run_directory_sequence(DirectoryHarness(cfg), seq)
