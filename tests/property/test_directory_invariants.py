"""Property-based invariants over the directory interconnect."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import InterconnectKind, ProtocolKind, ValidatePolicy
from repro.coherence.states import LineState
from tests.coherence.test_directory import DirectoryHarness

LINES = [0x10000, 0x10040]
WORDS = [0, 5]

accesses = st.lists(
    st.tuples(
        st.sampled_from(["load", "store"]),
        st.integers(0, 2),
        st.integers(0, len(LINES) - 1),
        st.integers(0, len(WORDS) - 1),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=40,
)


def run_directory_sequence(h, seq):
    shadow: dict = {}
    for kind, proc, line_idx, word_idx, value in seq:
        base = LINES[line_idx]
        widx = WORDS[word_idx]
        addr = base + widx * 8
        if kind == "load":
            _, observed, _ = h.load(proc, addr, spec=False)
            assert observed == shadow.get((base, widx), 0)
        else:
            h.store(proc, addr, value)
            shadow[(base, widx)] = value
        h.drain()
        # Single-writer + value coherence: every valid copy holds the
        # architectural value (catches a rotted T copy re-installed with
        # stale data, not just two disagreeing live copies).
        for b in LINES:
            writers = []
            for ctrl in h.controllers:
                line = ctrl.lookup(b)
                if line is None:
                    continue
                if line.state in (LineState.M, LineState.E):
                    writers.append(ctrl.node_id)
                if line.state.valid:
                    for w in WORDS:
                        assert line.data[w] == shadow.get((b, w), 0), (
                            f"P{ctrl.node_id} {line.state} {b:#x}[{w}]"
                        )
            assert len(writers) <= 1


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_directory_moesi_invariants(tiny_config, seq):
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    )
    run_directory_sequence(DirectoryHarness(cfg), seq)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_directory_emesti_invariants(tiny_config, seq):
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    ).with_protocol(
        kind=ProtocolKind.MOESTI, enhanced=True,
        validate_policy=ValidatePolicy.PREDICTOR,
    )
    run_directory_sequence(DirectoryHarness(cfg), seq)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_directory_mesti_invariants(tiny_config, seq):
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    ).with_protocol(
        kind=ProtocolKind.MESTI, validate_policy=ValidatePolicy.ALWAYS
    )
    run_directory_sequence(DirectoryHarness(cfg), seq)


def test_directory_t_copy_rot(tiny_config):
    """An un-tracked T copy must never be re-installed by a validate.

    A dirty flush observed by a read makes the home stop tracking its
    T-sharers (reads don't contact them, so their saved values can no
    longer match the last globally visible value).  A later validate is
    multicast to the *tracked* T-sharers only — the rotted copy has to
    stay dead even though its holder still caches the line in T.
    """
    cfg = dataclasses.replace(
        tiny_config, n_procs=3, interconnect=InterconnectKind.DIRECTORY
    ).with_protocol(
        kind=ProtocolKind.MESTI, validate_policy=ValidatePolicy.ALWAYS
    )
    h = DirectoryHarness(cfg)
    base = 0x10000

    h.load(1, base, spec=False)          # P1 fills clean
    h.drain()
    h.store(0, base, 1)                  # P0 writes: P1 -> T (saved 0), tracked
    h.drain()
    assert h.controllers[1].lookup(base).state is LineState.T
    assert 1 in h.bus.entry(base).t_sharers

    h.load(2, base, spec=False)          # dirty flush: 1 becomes visible
    h.drain()
    # The home stopped tracking P1; its T copy (saved 0) has rotted.
    assert not h.bus.entry(base).t_sharers
    assert h.controllers[1].lookup(base).state is LineState.T

    h.store(0, base, 2)                  # P2 -> T (saved 1), tracked
    h.drain()
    h.store(0, base, 1)                  # revert to 1: validate multicast
    h.drain()

    # The tracked T copy is re-installed with the correct saved value...
    line2 = h.controllers[2].lookup(base)
    assert line2 is not None and line2.state.valid and line2.data[0] == 1
    # ...but the rotted one stays dead: re-installing its stale 0 would
    # break the data-value invariant.
    line1 = h.controllers[1].lookup(base)
    assert line1 is None or not line1.state.valid
    # And a real read still observes the architectural value.
    _, observed, _ = h.load(1, base, spec=False)
    h.drain()
    assert observed == 1
