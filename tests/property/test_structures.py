"""Property tests on standalone data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import SlotCursor
from repro.memory.stale import StaleStorage


@given(
    width=st.integers(1, 8),
    earliest=st.lists(st.integers(0, 1000), min_size=1, max_size=200),
)
def test_slot_cursor_monotonic_and_width_bounded(width, earliest):
    cursor = SlotCursor(width)
    times = [cursor.next_at(e) for e in earliest]
    # Monotonic non-decreasing.
    assert all(a <= b for a, b in zip(times, times[1:]))
    # Never earlier than requested.
    assert all(t >= e for t, e in zip(times, earliest))
    # Width bound: no cycle hands out more than `width` slots.
    from collections import Counter

    assert max(Counter(times).values()) <= width


@given(
    capacity=st.integers(0, 8),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "drop"]),
            st.integers(0, 15),
        ),
        max_size=100,
    ),
)
def test_stale_storage_capacity_and_consistency(capacity, ops):
    storage = StaleStorage(capacity)
    shadow: dict[int, list[int]] = {}
    for op, key in ops:
        base = key * 64
        if op == "put":
            words = [key] * 8
            storage.put(base, words)
            shadow[base] = words
        elif op == "get":
            got = storage.get(base)
            if got is not None:
                # Anything returned must be the last value put.
                assert got == shadow[base]
        else:
            storage.drop(base)
            shadow.pop(base, None)
        assert len(storage) <= max(capacity, 0)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
def test_stale_storage_lru_keeps_recent(keys):
    storage = StaleStorage(4)
    for key in keys:
        storage.put(key * 64, [key] * 8)
    # The most recently inserted key is always retained (capacity > 0).
    assert storage.get(keys[-1] * 64) == [keys[-1]] * 8
