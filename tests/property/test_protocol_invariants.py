"""Property-based coherence invariants.

Random multiprocessor access sequences must preserve, at every step:

* **Single-writer**: at most one cache holds a line in M/E.
* **Writer exclusivity**: an M/E copy excludes any other valid copy.
* **Value coherence**: a load returns the value of the last
  architecturally-performed store to that word.
* **Dirty-data conservation**: if no cache holds the line dirty, memory
  holds the last stored value (after all events drain).
* **T-copy safety** (MESTI): a T copy's saved data always equals the
  last globally visible value at the time it was saved — so a validate
  can never re-install wrong data (checked via load values).
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import ProtocolKind, ValidatePolicy
from repro.coherence.states import LineState
from tests.harness import MemHarness

LINES = [0x10000, 0x10040, 0x10080]
WORDS = [0, 3]

# One access: (kind, proc, line_idx, word_idx, value)
accesses = st.lists(
    st.tuples(
        st.sampled_from(["load", "store"]),
        st.integers(0, 2),
        st.integers(0, len(LINES) - 1),
        st.integers(0, len(WORDS) - 1),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=40,
)


def make_harness(tiny_config, kind: ProtocolKind, enhanced=False):
    cfg = dataclasses.replace(tiny_config, n_procs=3)
    policy = ValidatePolicy.PREDICTOR if enhanced else ValidatePolicy.ALWAYS
    if kind.has_temporal_state:
        cfg = cfg.with_protocol(kind=kind, enhanced=enhanced, validate_policy=policy)
    else:
        cfg = cfg.with_protocol(kind=kind)
    return MemHarness(cfg)


def check_invariants(h: MemHarness, shadow: dict) -> None:
    for base in LINES:
        writers = []
        valid = []
        for ctrl in h.controllers:
            line = ctrl.lookup(base)
            if line is None:
                continue
            if line.state in (LineState.M, LineState.E):
                writers.append(ctrl.node_id)
            if line.state.valid:
                valid.append((ctrl.node_id, line.state))
        assert len(writers) <= 1, f"two writers for {base:#x}: {writers}"
        if writers:
            assert len(valid) == 1, (
                f"M/E copy of {base:#x} coexists with {valid}"
            )
        # Value coherence from any valid copy + memory fallback.
        for widx in WORDS:
            expected = shadow.get((base, widx), 0)
            for ctrl in h.controllers:
                line = ctrl.lookup(base)
                if line is not None and line.state.valid:
                    assert line.data[widx] == expected, (
                        f"P{ctrl.node_id} {line.state} {base:#x}[{widx}] = "
                        f"{line.data[widx]}, expected {expected}"
                    )
            if not any(
                ctrl.lookup(base) is not None and ctrl.lookup(base).state.dirty
                for ctrl in h.controllers
            ):
                assert h.memory.read_word(base, widx) == expected


def run_sequence(h: MemHarness, seq) -> None:
    shadow: dict = {}
    for kind, proc, line_idx, word_idx, value in seq:
        base = LINES[line_idx]
        widx = WORDS[word_idx]
        addr = base + widx * 8
        if kind == "load":
            _, observed, _ = h.load(proc, addr, spec=False)
            assert observed == shadow.get((base, widx), 0)
        else:
            h.store(proc, addr, value)
            shadow[(base, widx)] = value
        h.drain()
        check_invariants(h, shadow)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_mesi_invariants(tiny_config, seq):
    run_sequence(make_harness(tiny_config, ProtocolKind.MESI), seq)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_moesi_invariants(tiny_config, seq):
    run_sequence(make_harness(tiny_config, ProtocolKind.MOESI), seq)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_mesti_invariants(tiny_config, seq):
    run_sequence(make_harness(tiny_config, ProtocolKind.MESTI), seq)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_moesti_invariants(tiny_config, seq):
    run_sequence(make_harness(tiny_config, ProtocolKind.MOESTI), seq)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_emesti_invariants(tiny_config, seq):
    run_sequence(make_harness(tiny_config, ProtocolKind.MOESTI, enhanced=True), seq)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_mesti_with_explicit_stale_storage(tiny_config, seq):
    from repro.common.config import StaleDetectionMode

    cfg = dataclasses.replace(tiny_config, n_procs=3).with_protocol(
        kind=ProtocolKind.MOESTI,
        validate_policy=ValidatePolicy.ALWAYS,
        stale_detection=StaleDetectionMode.EXPLICIT,
        stale_storage_bytes=2 * 64,
    )
    run_sequence(MemHarness(cfg), seq)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seq=accesses)
def test_lvp_never_corrupts_values(tiny_config, seq):
    cfg = dataclasses.replace(tiny_config, n_procs=3).with_lvp(enabled=True)
    h = MemHarness(cfg)
    shadow: dict = {}
    for kind, proc, line_idx, word_idx, value in seq:
        base = LINES[line_idx]
        widx = WORDS[word_idx]
        addr = base + widx * 8
        if kind == "load":
            status, observed, op = h.load(proc, addr)
            h.drain()
            # Speculative deliveries may be stale, but then the op must
            # have been squashed, never silently retired.
            if status == "spec" and observed != shadow.get((base, widx), 0):
                assert op.squashed
            else:
                assert op.verified or status in ("hit", "miss")
        else:
            h.store(proc, addr, value)
            shadow[(base, widx)] = value
        h.drain()
