"""SLE engine end-to-end behavior through the full system (§4)."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LOCK = 0x2000
DATA = 0x2100
SIDE = 0x2200


def sle_config(base, **sle_kw):
    return base.with_sle(enabled=True, **sle_kw)


def acquire(b, value=1, pc=0x500):
    """Emit one acquire iteration; caller drives the retry loop."""
    b.larx(LOCK, pc=pc)


def locked_section(tid, n_stores=2, pc=0x500, data=DATA, release_value=0,
                   spin_forever=True, meta=None):
    """A thread that acquires LOCK, stores into data, releases."""

    def prog(_tid, config, rng):
        b = BlockBuilder()
        while True:
            b.larx(LOCK, pc=pc)
            v = yield b.take()
            if v != 0:
                b.alu(latency=4)
                continue
            b.stcx(LOCK, tid + 1, pc=pc, meta=meta or {"sle_fallback": ("cas",)})
            ok = yield b.take()
            if ok:
                break
        for i in range(n_stores):
            b.store(data + i * 8, 100 + tid * 10 + i)
        b.store(LOCK, release_value)  # release (reverting store)
        b.end()
        yield b.take()

    return prog


def run(config, *progs, seed=0):
    sys_ = System(config, ScriptWorkload(*progs), seed=seed)
    res = sys_.run(max_cycles=10_000_000, max_events=5_000_000)
    return res, sys_


class TestSuccessfulElision:
    def test_single_thread_elides_lock(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)
        res, sys_ = run(cfg, locked_section(0))
        assert sys_.stats["sle0.attempts"] == 1
        assert sys_.stats["sle0.successes"] == 1
        # The lock was never written: no Upgrade/ReadX for its line
        # beyond the larx read, and its memory value stays free.
        assert sys_.memory.read_line(LOCK)[0] == 0
        line = sys_.controllers[0].lookup(LOCK)
        assert line.data[0] == 0

    def test_elided_region_stores_apply_atomically(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)
        res, sys_ = run(cfg, locked_section(0, n_stores=3))
        line = sys_.controllers[0].lookup(DATA)
        assert line.data[0] == 100 and line.data[1] == 101 and line.data[2] == 102

    def test_concurrent_nonconflicting_elision(self, tiny4_config):
        """Raytrace's win: disjoint critical sections run concurrently."""
        cfg = sle_config(tiny4_config)
        progs = [
            locked_section(t, n_stores=2, data=DATA + t * 0x100) for t in range(4)
        ]
        res, sys_ = run(cfg, *progs)
        successes = sum(sys_.stats[f"sle{i}.successes"] for i in range(4))
        assert successes == 4  # every thread elided
        assert sys_.memory.read_line(LOCK)[0] == 0
        for t in range(4):
            line = sys_.controllers[t].lookup(DATA + t * 0x100)
            assert line.data[0] == 100 + t * 10

    def test_elision_removes_lock_traffic(self, tiny_config):
        cfg = sle_config(tiny_config)
        base_cfg = tiny_config
        progs = [locked_section(0, data=DATA), locked_section(1, data=SIDE)]
        _, with_sle = run(cfg, *progs)
        _, without = run(base_cfg, *progs)
        lock_writes = lambda s: s.stats["bus.txn.upgrade"] + s.stats["bus.txn.readx"]
        assert lock_writes(with_sle) < lock_writes(without)


class TestAborts:
    def test_conflicting_sections_stay_correct(self, tiny_config):
        """Two threads write the SAME data under the lock: whatever mix
        of elision/abort happens, both updates must land."""
        cfg = sle_config(tiny_config)
        done = []

        def writer(tid):
            def prog(_tid, config, rng):
                b = BlockBuilder()
                while True:
                    b.larx(LOCK, pc=0x500)
                    v = yield b.take()
                    if v != 0:
                        b.alu(latency=4)
                        continue
                    b.stcx(LOCK, tid + 1, pc=0x500, meta={"sle_fallback": ("cas",)})
                    ok = yield b.take()
                    if ok:
                        break
                b.store(DATA + tid * 8, tid + 1)  # own word of a SHARED line
                b.store(LOCK, 0)
                b.end()
                yield b.take()

            return prog

        res, sys_ = run(cfg, writer(0), writer(1))
        # Both stores landed regardless of elision outcome.
        owner_data = None
        for ctrl in sys_.controllers:
            line = ctrl.lookup(DATA)
            if line is not None and line.state.dirty:
                owner_data = line.data
        data = owner_data or sys_.memory.read_line(DATA)
        assert data[0] == 1 and data[1] == 2

    def test_no_release_aborts_and_falls_back(self, tiny_config):
        """An atomic-increment idiom: no reverting store ever arrives."""
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)

        def prog(_tid, config, rng):
            b = BlockBuilder()
            b.larx(SIDE, pc=0x600)
            v = yield b.take()
            b.stcx(SIDE, v + 1, pc=0x600, meta={"sle_fallback": ("add", 1)})
            ok = yield b.take()
            assert ok
            # A long tail with no release: the region overflows.
            for _ in range(200):
                b.alu()
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        assert sys_.stats["sle0.failure.no_release"] == 1
        assert sys_.stats["sle0.fallback_acquisitions"] == 1
        # The fallback applied the increment exactly once.
        line = sys_.controllers[0].lookup(SIDE)
        assert line.data[0] == 1

    def test_unsafe_isync_aborts(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)

        def prog(_tid, config, rng):
            b = BlockBuilder()
            b.larx(LOCK, pc=0x700)
            v = yield b.take()
            b.stcx(LOCK, 1, pc=0x700, meta={"sle_fallback": ("cas",)})
            ok = yield b.take()
            assert ok
            b.isync(unsafe_ctx=True)
            b.store(DATA, 5)
            b.store(LOCK, 0)
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        assert sys_.stats["sle0.failure.serialize"] == 1
        # Fallback really acquired and the program really released.
        line = sys_.controllers[0].lookup(LOCK)
        assert line.data[0] == 0
        assert sys_.controllers[0].lookup(DATA).data[0] == 5

    def test_safe_isync_is_elided_through(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)

        def prog(_tid, config, rng):
            b = BlockBuilder()
            b.larx(LOCK, pc=0x700)
            v = yield b.take()
            b.stcx(LOCK, 1, pc=0x700, meta={"sle_fallback": ("cas",)})
            ok = yield b.take()
            b.isync(unsafe_ctx=False)
            b.store(DATA, 5)
            b.store(LOCK, 0)
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        assert sys_.stats["sle0.successes"] == 1

    def test_naive_isync_handling_fails_kernel_sections(self, tiny_config):
        cfg = dataclasses.replace(
            sle_config(tiny_config, isync_safety_check=False), n_procs=1
        )

        def prog(_tid, config, rng):
            b = BlockBuilder()
            b.larx(LOCK, pc=0x700)
            v = yield b.take()
            b.stcx(LOCK, 1, pc=0x700, meta={"sle_fallback": ("cas",)})
            ok = yield b.take()
            b.isync(unsafe_ctx=False)  # safe, but the check is off
            b.store(DATA, 5)
            b.store(LOCK, 0)
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        assert sys_.stats["sle0.failure.serialize"] == 1

    def test_nested_control_op_aborts(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)

        def prog(_tid, config, rng):
            b = BlockBuilder()
            b.larx(LOCK, pc=0x800)
            v = yield b.take()
            b.stcx(LOCK, 1, pc=0x800, meta={"sle_fallback": ("cas",)})
            ok = yield b.take()
            b.load_ctl(DATA)  # control op inside the region
            inner = yield b.take()
            b.store(LOCK, 0)
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        assert sys_.stats["sle0.failure.nested"] == 1
        assert sys_.controllers[0].lookup(LOCK).data[0] == 0


class TestConfidenceIntegration:
    def test_repeated_no_release_stops_attempts(self, tiny_config):
        cfg = dataclasses.replace(sle_config(tiny_config), n_procs=1)

        def prog(_tid, config, rng):
            b = BlockBuilder()
            for i in range(4):
                b.larx(SIDE, pc=0x900)
                v = yield b.take()
                b.stcx(SIDE, v + 1, pc=0x900, meta={"sle_fallback": ("add", 1)})
                ok = yield b.take()
                for _ in range(120):
                    b.alu()
            b.end()
            yield b.take()

        res, sys_ = run(cfg, prog)
        # First candidate attempts, fails hard (no_release: -4), and
        # subsequent candidates at the same PC are filtered.
        assert sys_.stats["sle0.attempts"] == 1
        assert sys_.stats["sle0.filtered_by_confidence"] == 3
        assert sys_.controllers[0].lookup(SIDE).data[0] == 4  # all four incs landed
