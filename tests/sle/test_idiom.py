"""Idiom tracker unit tests."""

from repro.cpu.core import Phase, WinOp
from repro.cpu.isa import MicroOp, OpKind
from repro.sle.idiom import IdiomTracker


def winop(kind, addr, seq=0, value=None, done=True):
    w = WinOp(MicroOp(kind, addr=addr), seq)
    if done:
        w.phase = Phase.DONE
        w.value = value
    return w


def test_match_requires_same_address():
    t = IdiomTracker()
    t.note_larx(winop(OpKind.LARX, 0x100, value=0))
    assert t.match(winop(OpKind.STCX, 0x100)) is not None
    assert t.match(winop(OpKind.STCX, 0x200)) is None


def test_match_requires_completed_larx():
    t = IdiomTracker()
    pending = winop(OpKind.LARX, 0x100, done=False)
    t.note_larx(pending)
    assert t.match(winop(OpKind.STCX, 0x100)) is None


def test_dead_larx_not_matched():
    t = IdiomTracker()
    larx = winop(OpKind.LARX, 0x100, value=0)
    t.note_larx(larx)
    larx.dead = True
    assert t.match(winop(OpKind.STCX, 0x100)) is None


def test_latest_larx_wins():
    t = IdiomTracker()
    t.note_larx(winop(OpKind.LARX, 0x100, value=0))
    newer = winop(OpKind.LARX, 0x200, value=3, seq=5)
    t.note_larx(newer)
    assert t.match(winop(OpKind.STCX, 0x200)) is newer
    assert t.match(winop(OpKind.STCX, 0x100)) is None


def test_non_larx_ignored():
    t = IdiomTracker()
    t.note_larx(winop(OpKind.LOAD, 0x100, value=0))
    assert t.match(winop(OpKind.STCX, 0x100)) is None


def test_no_larx_no_match():
    assert IdiomTracker().match(winop(OpKind.STCX, 0x100)) is None
