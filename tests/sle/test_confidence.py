"""Elision confidence predictor (§4.2.3)."""

from repro.common.config import SLEConfig
from repro.common.stats import StatsRegistry
from repro.sle.confidence import ElisionConfidence


def make(**kw):
    stats = StatsRegistry()
    return ElisionConfidence(SLEConfig(enabled=True, **kw), stats.scoped("sle"))


def test_initial_confidence_attempts():
    c = make()
    assert c.should_attempt(pc=100)  # 8 >= 6


def test_no_release_failure_decays_fast():
    c = make()
    c.on_failure(100, "no_release")  # 8 - 4 = 4 < 6
    assert not c.should_attempt(100)


def test_conflict_decays_slower_than_no_release():
    c = make()
    cfg = c.config
    assert cfg.conflict_decrement < cfg.no_release_decrement
    c.on_failure(100, "conflict")  # 8 - 2 = 6
    assert c.should_attempt(100)
    c.on_failure(100, "conflict")  # 4: below threshold
    assert not c.should_attempt(100)


def test_success_reinforces():
    c = make()
    for _ in range(2):
        c.on_failure(100, "conflict")  # 4: below
    assert not c.should_attempt(100)
    c.on_success(100)
    c.on_success(100)  # 6: attempts again
    assert c.should_attempt(100)


def test_saturation_bounds():
    c = make()
    for _ in range(20):
        c.on_success(100)
    assert c.confidence(100) == 15  # 4-bit counter
    for _ in range(20):
        c.on_failure(100, "no_release")
    assert c.confidence(100) == 0


def test_pcs_are_independent():
    c = make()
    c.on_failure(100, "no_release")
    assert c.should_attempt(200)
    assert not c.should_attempt(100)


def test_shared_pc_interference():
    """The §4.2.3 effect: kernel locks and atomics share a PC, so a
    non-lock idiom's failures disable elision for real locks too."""
    c = make()
    shared_pc = 0x1000
    c.on_failure(shared_pc, "no_release")  # an atomic-inc candidate failed
    assert not c.should_attempt(shared_pc)  # the lock now skips elision


def test_disabled_prediction_always_attempts():
    c = make(confidence_enabled=False)
    for _ in range(10):
        c.on_failure(100, "no_release")
    assert c.should_attempt(100)


def test_serialize_and_nested_decrements():
    c = make()
    dec = c.config.serialize_decrement
    c.on_failure(100, "serialize")
    assert c.confidence(100) == 8 - dec
    c.on_failure(100, "nested")
    assert c.confidence(100) == 8 - 2 * dec
