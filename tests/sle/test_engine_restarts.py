"""SLE restart and fallback behaviors under contention."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LOCK = 0x2000
SHARED = 0x2100


def contended_writer(tid, rounds=4):
    """Acquire LOCK, write a SHARED line (conflicting across threads)."""

    def prog(_tid, config, rng):
        b = BlockBuilder()
        for r in range(rounds):
            while True:
                b.larx(LOCK, pc=0x500)
                v = yield b.take()
                if v != 0:
                    b.alu(latency=4)
                    continue
                b.stcx(LOCK, tid + 1, pc=0x500, meta={"sle_fallback": ("cas",)})
                ok = yield b.take()
                if ok:
                    break
            b.store(SHARED + tid * 8, r + 1)  # same line: elisions conflict
            b.store(LOCK, 0)
            for _ in range(10):
                b.alu(latency=2)
        b.end()
        yield b.take()

    return prog


def run_contended(config, n=4, rounds=4, seed=17):
    progs = [contended_writer(t, rounds) for t in range(n)]
    cfg = dataclasses.replace(config.with_sle(enabled=True), n_procs=n)
    system = System(cfg, ScriptWorkload(*progs), seed=seed)
    system.run(max_cycles=50_000_000, max_events=20_000_000)
    return system


def total(system, name):
    return sum(
        system.stats.get(f"sle{i}.{name}") for i in range(len(system.cores))
    )


def test_conflicting_elisions_still_produce_exact_values(tiny4_config):
    system = run_contended(tiny4_config)
    data = None
    for ctrl in system.controllers:
        line = ctrl.lookup(SHARED)
        if line is not None and line.state.dirty:
            data = line.data
    data = data or system.memory.read_line(SHARED)
    assert data[:4] == [4, 4, 4, 4]  # every thread's last round landed


def test_restarts_bounded_by_limit(tiny4_config):
    cfg = tiny4_config.with_sle(restart_limit=1)
    system = run_contended(cfg)
    # Restarts happened but never exceeded the limit per episode:
    # every conflict beyond the limit fell back to real acquisition.
    assert total(system, "restarts") <= total(system, "failure.conflict")


def test_zero_restart_limit_goes_straight_to_fallback(tiny4_config):
    cfg = tiny4_config.with_sle(restart_limit=0)
    system = run_contended(cfg)
    if total(system, "failure.conflict"):
        assert total(system, "restarts") == 0
        assert total(system, "fallback_acquisitions") > 0


def test_fallback_acquisition_serializes_correctly(tiny4_config):
    """With conflicts every round, fallbacks must still hand the lock
    around without losing any updates."""
    cfg = tiny4_config.with_sle(restart_limit=0, conflict_decrement=0)
    # conflict_decrement=0 keeps confidence high: every round attempts
    # elision, conflicts, and falls back — maximum stress.
    system = run_contended(cfg, rounds=3)
    data = None
    for ctrl in system.controllers:
        line = ctrl.lookup(SHARED)
        if line is not None and line.state.dirty:
            data = line.data
    data = data or system.memory.read_line(SHARED)
    assert data[:4] == [3, 3, 3, 3]


def test_sle_stats_are_consistent(tiny4_config):
    system = run_contended(tiny4_config)
    attempts = total(system, "attempts")
    successes = total(system, "successes")
    fails = sum(
        total(system, f"failure.{r}")
        for r in ("no_release", "conflict", "serialize", "nested")
    )
    assert attempts > 0
    # Every attempt ends in success or >=1 failure event (restarts can
    # add extra failure events per attempt).
    assert successes <= attempts
    assert successes + fails >= attempts
