"""SLE in-core buffering bounds and end-of-stream handling."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LOCK = 0x3000
DATA = 0x3100


def run_single(config, prog, seed=0):
    cfg = dataclasses.replace(config.with_sle(enabled=True), n_procs=1)
    sys_ = System(cfg, ScriptWorkload(prog), seed=seed)
    res = sys_.run(max_cycles=20_000_000, max_events=8_000_000)
    return res, sys_


def locked_region(body_ops, release=True):
    def prog(tid, config, rng):
        b = BlockBuilder()
        b.larx(LOCK, pc=0x900)
        v = yield b.take()
        b.stcx(LOCK, 1, pc=0x900, meta={"sle_fallback": ("cas",)})
        ok = yield b.take()
        assert ok
        for i in range(body_ops):
            b.store(DATA + (i % 8) * 8, i)
            if (i + 1) % 32 == 0:
                yield b.take()
        if release:
            b.store(LOCK, 0)
        b.end()
        yield b.take()

    return prog


def test_region_within_threshold_elides(tiny_config):
    # rob 32, threshold 0.5 -> 16-op regions fit.
    res, sys_ = run_single(tiny_config, locked_region(10))
    assert sys_.stats["sle0.successes"] == 1
    assert sys_.stats["sle0.failure.no_release"] == 0


def test_region_beyond_threshold_aborts_even_with_release(tiny_config):
    """The in-core constraint (§4.2.1): a critical section larger than
    the ROB threshold cannot be elided even though a release exists."""
    res, sys_ = run_single(tiny_config, locked_region(60))
    assert sys_.stats["sle0.successes"] == 0
    assert sys_.stats["sle0.failure.no_release"] == 1
    assert sys_.stats["sle0.fallback_acquisitions"] == 1
    # The program still completed correctly: lock released for real.
    assert sys_.controllers[0].lookup(LOCK).data[0] == 0


def test_bigger_threshold_recovers_the_elision(tiny_config):
    cfg = tiny_config.with_core(rob_size=256)
    res, sys_ = run_single(cfg, locked_region(60))
    assert sys_.stats["sle0.successes"] == 1


def test_program_end_inside_region_aborts(tiny_config):
    res, sys_ = run_single(tiny_config, locked_region(4, release=False))
    assert sys_.stats["sle0.failure.no_release"] == 1
    # Fallback made the speculative acquire real; nobody released.
    assert sys_.controllers[0].lookup(LOCK).data[0] == 1
    assert sys_.cores[0].finished


def test_region_stores_all_land_atomically(tiny_config):
    res, sys_ = run_single(tiny_config, locked_region(8))
    line = sys_.controllers[0].lookup(DATA)
    assert line.data == [0, 1, 2, 3, 4, 5, 6, 7]
