"""Checkpoint-mode SLE (§4.2.1, Rajwar's variant)."""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from tests.harness import ScriptWorkload

LOCK = 0x3000
DATA = 0x3100


def run_single(config, prog, checkpoint=True, seed=0, **sle_kw):
    cfg = dataclasses.replace(
        config.with_sle(enabled=True, checkpoint_mode=checkpoint, **sle_kw),
        n_procs=1,
    )
    sys_ = System(cfg, ScriptWorkload(prog), seed=seed)
    res = sys_.run(max_cycles=20_000_000, max_events=8_000_000)
    return res, sys_


def long_region(body_ops, n_stores=6, release=True):
    """A region with ``n_stores`` speculative stores and ``body_ops``
    ALU ops: total length scales past any ROB while the store count
    stays within (or beyond, if asked) the store buffer."""

    def prog(tid, config, rng):
        b = BlockBuilder()
        b.larx(LOCK, pc=0x900)
        v = yield b.take()
        b.stcx(LOCK, 1, pc=0x900, meta={"sle_fallback": ("cas",)})
        ok = yield b.take()
        assert ok
        for s in range(n_stores):
            b.store(DATA + (s % 8) * 8, s + 1)
        for i in range(body_ops):
            b.alu(latency=1)
            if (i + 1) % 16 == 0:
                yield b.take()
        if release:
            b.store(LOCK, 0)
        b.end()
        yield b.take()

    return prog


def test_checkpoint_elides_regions_beyond_the_rob(tiny_config):
    """The paper's §5.1.3 point: in-core SLE is window-bounded;
    checkpointing captures much longer silent-pair distances."""
    ops = 120  # far beyond a 32-entry window
    in_core, sys_ic = run_single(tiny_config, long_region(ops), checkpoint=False)
    assert sys_ic.stats["sle0.successes"] == 0

    ckpt, sys_ck = run_single(tiny_config, long_region(ops), checkpoint=True)
    assert sys_ck.stats["sle0.successes"] == 1
    # The lock was never written under the successful elision.
    assert sys_ck.controllers[0].lookup(LOCK).data[0] == 0


def test_checkpoint_bounded_by_store_buffer(tiny_config):
    """Speculative stores are bounded by store-buffer capacity."""
    cfg = tiny_config.with_core(store_buffer=4)
    res, sys_ = run_single(cfg, long_region(40, n_stores=8), checkpoint=True)
    assert sys_.stats["sle0.successes"] == 0
    assert sys_.stats["sle0.failure.no_release"] == 1
    # All eight stores still landed (fallback replay), exactly once.
    line = sys_.controllers[0].lookup(DATA)
    assert line.data == [1, 2, 3, 4, 5, 6, 7, 8]


def test_checkpoint_success_applies_stores_once(tiny_config):
    res, sys_ = run_single(tiny_config, long_region(60), checkpoint=True)
    assert sys_.stats["sle0.successes"] == 1
    line = sys_.controllers[0].lookup(DATA)
    assert line.data[:6] == [1, 2, 3, 4, 5, 6]


def test_checkpoint_conflict_abort_with_retired_ops(tiny_config):
    """A remote conflict after region ops retired: the fallback must
    re-apply the retired stores after really acquiring the lock."""
    cfg = dataclasses.replace(
        tiny_config.with_sle(enabled=True, checkpoint_mode=True), n_procs=2
    )
    FLAG = 0x3800

    def victim(tid, config, rng):
        b = BlockBuilder()
        b.larx(LOCK, pc=0x910)
        v = yield b.take()
        b.stcx(LOCK, 1, pc=0x910, meta={"sle_fallback": ("cas",)})
        ok = yield b.take()
        # Long region: the stores retire long before the conflict.
        for s in range(8):
            b.store(DATA + s * 8, s + 33)
        for i in range(120):
            b.alu(latency=2)
            if (i + 1) % 16 == 0:
                yield b.take()
        b.store(LOCK, 0)
        b.sync()
        b.store(FLAG, 1)
        b.end()
        yield b.take()

    def attacker(tid, config, rng):
        b = BlockBuilder()
        for _ in range(30):
            b.alu(latency=4)
        b.store(DATA, 999)  # write into the victim's write set
        b.end()
        yield b.take()

    sys_ = System(cfg, ScriptWorkload(victim, attacker), seed=5)
    sys_.run(max_cycles=20_000_000, max_events=8_000_000)
    assert sys_.cores[0].finished and sys_.cores[1].finished
    # Whatever interleaving: the victim's final region values all
    # landed (999 may or may not survive depending on order, but the
    # victim's last writes to words 1..7 must).
    line = None
    for ctrl in sys_.controllers:
        cand = ctrl.lookup(DATA)
        if cand is not None and cand.state.dirty:
            line = cand
    line = line or sys_.controllers[0].lookup(DATA)
    assert line.data[1:] == [34, 35, 36, 37, 38, 39, 40]
    lock_line = None
    for ctrl in sys_.controllers:
        cand = ctrl.lookup(LOCK)
        if cand is not None and cand.has_data:
            lock_line = cand
            if cand.state.dirty:
                break
    assert lock_line.data[0] == 0


def test_checkpoint_restore_penalty_charged(tiny_config):
    """Aborts with retired ops cost at least the restore penalty."""
    cfg4 = tiny_config.with_core(store_buffer=4)
    fast, _ = run_single(
        cfg4, long_region(40, n_stores=8), checkpoint=True,
        checkpoint_restore_penalty=0,
    )
    slow, _ = run_single(
        cfg4, long_region(40, n_stores=8), checkpoint=True,
        checkpoint_restore_penalty=2000,
    )
    assert slow.cycles >= fast.cycles + 1500
