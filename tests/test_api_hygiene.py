"""API hygiene: documentation and import health of the public surface."""

import ast
import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC = pathlib.Path(repro.__file__).parent


def iter_modules():
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_imports_cleanly(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


def _public_defs(path: pathlib.Path):
    tree = ast.parse(path.read_text())
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                yield node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not sub.name.startswith("_") and sub.name != "__init__":
                            yield sub


@pytest.mark.parametrize(
    "path", sorted(SRC.rglob("*.py")), ids=lambda p: str(p.relative_to(SRC))
)
def test_public_items_documented(path):
    undocumented = [
        node.name
        for node in _public_defs(path)
        if not ast.get_docstring(node)
    ]
    assert not undocumented, f"{path.name}: missing docstrings: {undocumented}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_lint_public_api_is_stable():
    """repro.lint must keep exporting its documented stable surface."""
    import inspect

    import repro.lint as lint

    for name in ("run_lint", "Rule", "Finding"):
        assert name in lint.__all__, name
        assert getattr(lint, name, None) is not None, name
    assert callable(lint.run_lint)
    assert inspect.isclass(lint.Rule)
    assert inspect.isclass(lint.Finding)
    # The Finding wire-contract the baseline and CI JSON depend on.
    fields = set(inspect.signature(lint.Finding).parameters)
    assert {"rule", "path", "line", "message", "snippet"} <= fields


def test_no_circular_import_on_fresh_interpreter():
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c", "import repro; import repro.experiments"],
        capture_output=True,
    )
    assert out.returncode == 0, out.stderr.decode()
