"""Fixture pairs for the dataflow contract rules (SL204-205)."""

from __future__ import annotations

import textwrap

from repro.lint import run_lint


def _write(tmp_path, rel: str, source: str):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('"""Fixture."""\n' + textwrap.dedent(source))


def _lint(tmp_path, rule: str):
    return run_lint(paths=[tmp_path], rules=[rule], audit=False)


# ---------------------------------------------------------------------------
# SL204 — nondeterminism tainting a determinism-bearing sink
# ---------------------------------------------------------------------------


def test_sl204_flags_clock_flowing_into_fingerprint(tmp_path):
    _write(tmp_path, "exp/mod.py", """
        import time

        from repro.experiments.runner import cell_fingerprint


        def key(config, benchmark):
            stamp = time.time()
            return cell_fingerprint(config, benchmark, stamp)
    """)
    result = _lint(tmp_path, "SL204")
    assert [f.rule for f in result.findings] == ["SL204"]


def test_sl204_tracks_taint_through_assignments(tmp_path):
    """The dataflow part: the clock value passes through two local
    rebindings before hitting the sink."""
    _write(tmp_path, "exp/mod.py", """
        import time

        from repro.experiments.runner import cell_fingerprint


        def key(config, benchmark):
            raw = time.time()
            salt = raw * 2
            return cell_fingerprint(config, benchmark, salt)
    """)
    assert _lint(tmp_path, "SL204").findings


def test_sl204_reassignment_kills_taint(tmp_path):
    """Overwriting the name with a clean value must clear it — a
    taint set that only grows would flag half the runner."""
    _write(tmp_path, "exp/mod.py", """
        import time

        from repro.experiments.runner import cell_fingerprint


        def key(config, benchmark):
            stamp = time.time()
            stamp = 0
            return cell_fingerprint(config, benchmark, stamp)
    """)
    assert _lint(tmp_path, "SL204").clean


def test_sl204_flags_tainted_event_payload_field(tmp_path):
    """A wall-clock reading in a *deterministic* event field breaks
    byte-identical event logs across runs."""
    _write(tmp_path, "service/mod.py", """
        import time


        class Thing:
            def __init__(self, events):
                self.events = events

            def go(self, job):
                started = time.time()
                self.events.emit("job.enqueued", job=job, cells=started)
    """)
    result = _lint(tmp_path, "SL204")
    assert [f.rule for f in result.findings] == ["SL204"]


def test_sl204_allows_taint_in_declared_nondeterministic_field(tmp_path):
    """NONDETERMINISTIC_FIELDS (wall_seconds & co.) may carry clock
    readings — that is what the allowlist is for."""
    _write(tmp_path, "service/mod.py", """
        import time


        class Thing:
            def __init__(self, events):
                self.events = events

            def go(self, job):
                started = time.time()
                self.events.emit("job.enqueued", job=job,
                                 wall_seconds=started)
    """)
    assert _lint(tmp_path, "SL204").clean


# ---------------------------------------------------------------------------
# SL205 — emit payloads / metric reads vs their declarations
# ---------------------------------------------------------------------------


def test_sl205_flags_emit_missing_required_field(tmp_path):
    """job.enqueued declares (job, cells); dropping one would raise
    at runtime — the cross-check catches it statically."""
    _write(tmp_path, "service/mod.py", """
        class Thing:
            def __init__(self, events):
                self.events = events

            def go(self, job):
                self.events.emit("job.enqueued", job=job)
    """)
    result = _lint(tmp_path, "SL205")
    assert [f.rule for f in result.findings] == ["SL205"]
    assert "cells" in result.findings[0].message


def test_sl205_passes_complete_emit(tmp_path):
    _write(tmp_path, "service/mod.py", """
        class Thing:
            def __init__(self, events):
                self.events = events

            def go(self, job):
                self.events.emit("job.enqueued", job=job, cells=3)
    """)
    assert _lint(tmp_path, "SL205").clean


def test_sl205_resolves_single_assignment_dict_splat(tmp_path):
    """`emit(name, **payload)` checks through one all-literal dict."""
    _write(tmp_path, "service/mod.py", """
        class Thing:
            def __init__(self, events):
                self.events = events

            def go(self, job):
                payload = {"job": job}
                self.events.emit("job.enqueued", **payload)
    """)
    result = _lint(tmp_path, "SL205")
    assert [f.rule for f in result.findings] == ["SL205"]


def test_sl205_flags_read_of_undeclared_metric_family(tmp_path):
    _write(tmp_path, "service/mod.py", """
        class Probe:
            def __init__(self, metrics):
                self.metrics = metrics
                self.metrics.counter("repro_cells_total", "cells run")

            def snapshot(self):
                return self.metrics.get("repro_cels_total")
    """)
    result = _lint(tmp_path, "SL205")
    assert [f.rule for f in result.findings] == ["SL205"]
    assert "repro_cels_total" in result.findings[0].message


def test_sl205_passes_read_of_declared_metric_family(tmp_path):
    _write(tmp_path, "service/mod.py", """
        class Probe:
            def __init__(self, metrics):
                self.metrics = metrics
                self.metrics.counter("repro_cells_total", "cells run")

            def snapshot(self):
                return self.metrics.get("repro_cells_total")
    """)
    assert _lint(tmp_path, "SL205").clean
