"""Fixture pairs for the whole-program concurrency rules (SL201-203)."""

from __future__ import annotations

import textwrap

from repro.lint import run_lint


def _write(tmp_path, rel: str, source: str):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('"""Fixture."""\n' + textwrap.dedent(source))


def _lint(tmp_path, rule: str):
    return run_lint(paths=[tmp_path], rules=[rule], audit=False)


# ---------------------------------------------------------------------------
# SL201 — blocking call reachable from a service coroutine
# ---------------------------------------------------------------------------


def test_sl201_flags_direct_blocking_call(tmp_path):
    _write(tmp_path, "service/api.py", """
        import time


        async def handler():
            time.sleep(1)
    """)
    result = _lint(tmp_path, "SL201")
    assert [f.rule for f in result.findings] == ["SL201"]
    assert "async def handler" in result.findings[0].message
    assert result.findings[0].snippet == "time.sleep(1)"


def test_sl201_flags_transitively_reachable_blocking_call(tmp_path):
    """The point of the call graph: the blocking call is two sync
    hops away from the coroutine, through a typed attribute."""
    _write(tmp_path, "service/mod.py", """
        class Store:
            def flush(self):
                self._save()

            def _save(self):
                from pathlib import Path
                Path("x").write_text("data")

        class Shard:
            def __init__(self, store: Store):
                self.store = store

            async def stop(self):
                self.store.flush()
    """)
    result = _lint(tmp_path, "SL201")
    assert result.findings, "missed the transitive blocking call"
    assert all(f.rule == "SL201" for f in result.findings)
    # The finding names the entry coroutine and sits on the write_text.
    assert any("Shard.stop" in f.message for f in result.findings)


def test_sl201_passes_offloaded_call(tmp_path):
    """run_in_executor(None, fn) passes the callable instead of
    calling it — the graph sees no edge, the rule stays quiet."""
    _write(tmp_path, "service/mod.py", """
        import asyncio

        class Store:
            def flush(self):
                from pathlib import Path
                Path("x").write_text("data")

        class Shard:
            def __init__(self, store: Store):
                self.store = store

            async def stop(self):
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self.store.flush)
    """)
    assert _lint(tmp_path, "SL201").clean


def test_sl201_ignores_blocking_calls_outside_service_scope(tmp_path):
    """Only service/ coroutines serve concurrent requests; a bench
    script may block all it likes."""
    _write(tmp_path, "bench/run.py", """
        import time


        async def sweep():
            time.sleep(1)
    """)
    assert _lint(tmp_path, "SL201").clean


# ---------------------------------------------------------------------------
# SL202 — guarded attribute accessed without its lock
# ---------------------------------------------------------------------------


def test_sl202_flags_lock_free_read_of_guarded_attr(tmp_path):
    _write(tmp_path, "service/mod.py", """
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.RLock()
                self.jobs = {}

            def submit(self, job):
                with self._lock:
                    self.jobs[job] = "queued"

            def peek(self, job):
                return self.jobs.get(job)
    """)
    result = _lint(tmp_path, "SL202")
    assert [f.rule for f in result.findings] == ["SL202"]
    assert "jobs" in result.findings[0].message


def test_sl202_passes_lock_held_access(tmp_path):
    _write(tmp_path, "service/mod.py", """
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.RLock()
                self.jobs = {}

            def submit(self, job):
                with self._lock:
                    self.jobs[job] = "queued"

            def peek(self, job):
                with self._lock:
                    return self.jobs.get(job)
    """)
    assert _lint(tmp_path, "SL202").clean


def test_sl202_guard_comment_escape_hatch(tmp_path):
    """`# sl: guarded-by(<lock>)` asserts a guarantee the analysis
    cannot see (e.g. the only caller is inside a lock region but
    reaches here through a lambda)."""
    _write(tmp_path, "service/mod.py", """
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.RLock()
                self.jobs = {}

            def submit(self, job):
                with self._lock:
                    self.jobs[job] = "queued"

            def peek(self, job):
                return self.jobs.get(job)  # sl: guarded-by(_lock)
    """)
    assert _lint(tmp_path, "SL202").clean


def test_sl202_helper_only_called_under_lock_is_not_flagged(tmp_path):
    """Held-method inference: a private helper whose every call site
    holds the lock may touch guarded state lock-free."""
    _write(tmp_path, "service/mod.py", """
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.RLock()
                self.jobs = {}

            def submit(self, job):
                with self._lock:
                    self.jobs[job] = "queued"
                    self._bump(job)

            def _bump(self, job):
                self.jobs[job] = "bumped"
    """)
    assert _lint(tmp_path, "SL202").clean


def test_sl202_flags_cross_class_lock_free_access(tmp_path):
    """The api.py bug class: another object reading `queue.jobs`
    without the queue's lock."""
    _write(tmp_path, "service/mod.py", """
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.RLock()
                self.jobs = {}

            def submit(self, job):
                with self._lock:
                    self.jobs[job] = "queued"

        class Api:
            def __init__(self, queue: Queue):
                self.queue = queue

            def status(self, job):
                return self.queue.jobs[job]
    """)
    result = _lint(tmp_path, "SL202")
    assert result.findings, "missed the cross-class lock-free read"
    assert all(f.rule == "SL202" for f in result.findings)


# ---------------------------------------------------------------------------
# SL203 — fork-unsafe capture crossing into a process pool
# ---------------------------------------------------------------------------


def test_sl203_flags_bound_method_of_lock_holder(tmp_path):
    """Submitting a bound method pickles the whole instance — locks
    and sockets do not survive the trip."""
    _write(tmp_path, "service/mod.py", """
        import threading
        from concurrent.futures import ProcessPoolExecutor


        class Store:
            def __init__(self):
                self._lock = threading.RLock()

            def flush(self):
                pass


        def run(store: Store):
            pool = ProcessPoolExecutor(2)
            pool.submit(store.flush)
    """)
    result = _lint(tmp_path, "SL203")
    assert [f.rule for f in result.findings] == ["SL203"]


def test_sl203_passes_plain_function_submit(tmp_path):
    _write(tmp_path, "service/mod.py", """
        from concurrent.futures import ProcessPoolExecutor


        def simulate(config):
            return config


        def run(config):
            pool = ProcessPoolExecutor(2)
            pool.submit(simulate, config)
    """)
    assert _lint(tmp_path, "SL203").clean
