"""Per-rule fixtures: one source that triggers, one that passes."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import run_lint

# (rule id, triggering source, passing source) — the passing source
# exercises the *same shape* of code written the disciplined way, so a
# rule cannot pass these tests by matching everything.
FIXTURES = {
    "SL001": (
        """
        import random
        import time


        def jitter():
            return random.randrange(8) + int(time.time())
        """,
        """
        import time
        from repro.common.rng import SplitRng


        def jitter(rng: SplitRng):
            return rng.randrange(8) + int(time.perf_counter() * 0)
        """,
    ),
    "SL002": (
        """
        def arbitrate(entry):
            waiting = set(entry.sharers) | {entry.owner}
            for node in waiting:
                yield node
        """,
        """
        def arbitrate(entry):
            waiting = set(entry.sharers) | {entry.owner}
            for node in sorted(waiting):
                yield node
            total = sum(n for n in {1, 2, 3})
            return total
        """,
    ),
    "SL003": (
        """
        def order(lines):
            return sorted(lines, key=lambda line: id(line))
        """,
        """
        def order(lines):
            return sorted(lines, key=lambda line: line.base)
        """,
    ),
    "SL004": (
        """
        def should_validate(confidence):
            return confidence == 0.5
        """,
        """
        def should_validate(confidence):
            return confidence >= 0.5
        """,
    ),
    "SL005": (
        """
        def schedule_all(scheduler, txns):
            for txn in txns:
                scheduler.at(10, lambda: txn.fire())
        """,
        """
        def schedule_all(scheduler, txns):
            for txn in txns:
                scheduler.at(10, lambda txn=txn: txn.fire())
        """,
    ),
    "SL006": (
        """
        class Widget:
            def __init__(self, tracer=None):
                self.tracer = tracer
        """,
        """
        from repro.obs.tracer import NULL_TRACER


        class Widget:
            def __init__(self, tracer=NULL_TRACER):
                self.tracer = tracer
        """,
    ),
}


def lint_source(tmp_path, source: str, rule: str):
    """Write ``source`` to a module and run one rule over it."""
    path = tmp_path / "fixture.py"
    path.write_text('"""Fixture."""\n' + textwrap.dedent(source))
    return run_lint(paths=[tmp_path], rules=[rule], audit=False)


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_triggers(tmp_path, rule):
    triggering, _ = FIXTURES[rule]
    result = lint_source(tmp_path, triggering, rule)
    assert result.findings, f"{rule} missed its trigger fixture"
    assert all(f.rule == rule for f in result.findings)
    assert all(f.path == "fixture.py" and f.line > 0 for f in result.findings)


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_passes_clean_shape(tmp_path, rule):
    _, passing = FIXTURES[rule]
    result = lint_source(tmp_path, passing, rule)
    assert result.clean, (
        f"{rule} false-positived on the disciplined variant: "
        f"{[f.message for f in result.findings]}"
    )


def test_sl001_exempts_rng_module(tmp_path):
    """common/rng.py may wrap the random module; everyone else may not."""
    rng_dir = tmp_path / "common"
    rng_dir.mkdir()
    source = '"""RNG."""\nimport random\n\n\ndef make():\n    return random.Random(0)\n'
    (rng_dir / "rng.py").write_text(source)
    assert run_lint(paths=[tmp_path], rules=["SL001"], audit=False).clean
    (rng_dir / "rogue.py").write_text(source)
    result = run_lint(paths=[tmp_path], rules=["SL001"], audit=False)
    assert {f.path for f in result.findings} == {"common/rogue.py"}


def test_sl002_cross_file_set_attribute(tmp_path):
    """A set-annotated attribute in one file flags iteration in another."""
    (tmp_path / "entry.py").write_text(textwrap.dedent(
        '''
        """Entry."""
        from dataclasses import dataclass, field


        @dataclass
        class Entry:
            """Directory entry."""

            waiters: set[int] = field(default_factory=set)
        '''
    ))
    (tmp_path / "user.py").write_text(textwrap.dedent(
        '''
        """User."""


        def drain(entry):
            """Contact each waiter."""
            return [w for w in entry.waiters]
        '''
    ))
    result = run_lint(paths=[tmp_path], rules=["SL002"], audit=False)
    assert [f.path for f in result.findings] == ["user.py"]


def test_sl005_immediate_call(tmp_path):
    source = """
    def arm(scheduler, cb):
        scheduler.after(5, cb())
    """
    result = lint_source(tmp_path, source, "SL005")
    assert len(result.findings) == 1
    assert "registration time" in result.findings[0].message


def test_sl006_guarded_emit_passes(tmp_path):
    source = """
    from repro.obs.tracer import NULL_TRACER


    def snapshot(tracer, nodes):
        if tracer is not NULL_TRACER:
            tracer.emit("snap", states=[n.state for n in nodes])
    """
    assert lint_source(tmp_path, source, "SL006").clean


def _write_module(tmp_path, rel: str, source: str):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text('"""Fixture."""\n' + textwrap.dedent(source))


def test_sl007_flags_direct_paper_counter_add(tmp_path):
    source = """
    def after_store(self):
        self._stats.add("ts_stores")
    """
    _write_module(tmp_path, "coherence/ctrl.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL007"], audit=False)
    assert [f.path for f in result.findings] == ["coherence/ctrl.py"]
    assert "bound_counter" in result.findings[0].message


def test_sl007_flags_fstring_prefix(tmp_path):
    source = """
    def abort(self, reason):
        self._stats.add(f"failure.{reason}")
    """
    _write_module(tmp_path, "sle/engine.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL007"], audit=False)
    assert len(result.findings) == 1


def test_sl007_scope_and_non_paper_counters_pass(tmp_path):
    # The same paper counter outside the scoped layers is fine (the
    # handles only exist in coherence/lvp/sle), as are ordinary
    # counters inside them.
    _write_module(tmp_path, "experiments/sweep.py", """
    def record(stats):
        stats.add("ts_stores")
    """)
    _write_module(tmp_path, "coherence/ctrl.py", """
    def flush(self, stats):
        stats.add("flushes")
        self._m_ts_stores.inc()
    """)
    assert run_lint(paths=[tmp_path], rules=["SL007"], audit=False).clean


def test_sl008_flags_discarded_span_id(tmp_path):
    source = """
    class Controller:
        def issue(self):
            self.tracer.span_begin("txn", node=self.node_id)
    """
    _write_module(tmp_path, "coherence/ctrl.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL008"], audit=False)
    assert result.findings, "discarded span id must be flagged"
    assert any("discarded" in f.message for f in result.findings)


def test_sl008_flags_begin_only_module(tmp_path):
    source = """
    class Engine:
        def begin(self):
            self._span = self.tracer.span_begin("sle.region")
    """
    _write_module(tmp_path, "sle/engine.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL008"], audit=False)
    assert len(result.findings) == 1
    assert "never closes" in result.findings[0].message


def test_sl008_passes_disciplined_shapes(tmp_path):
    # Kept id + span_end in the same module; the context-manager
    # helper; and an end-only module (closing spans opened elsewhere,
    # the interconnect's role) are all disciplined.
    _write_module(tmp_path, "coherence/ctrl.py", """
    class Controller:
        def issue(self):
            sid = self.tracer.span_begin("txn")
            self.tracer.span_end(sid)
    """)
    _write_module(tmp_path, "lvp/unit.py", """
    class Unit:
        def resolve(self):
            with self.tracer.span("verify"):
                pass
    """)
    _write_module(tmp_path, "coherence/bus.py", """
    class Bus:
        def grant(self, txn):
            self.tracer.span_end(txn.span, node=txn.requester)
    """)
    assert run_lint(paths=[tmp_path], rules=["SL008"], audit=False).clean


def test_sl008_out_of_scope_passes(tmp_path):
    _write_module(tmp_path, "experiments/sweep.py", """
    def probe(tracer):
        tracer.span_begin("txn")
    """)
    assert run_lint(paths=[tmp_path], rules=["SL008"], audit=False).clean


def test_sl009_flags_undeclared_event_name(tmp_path):
    source = """
    class Shard:
        def serve(self, fingerprint):
            self.events.emit("cell.vibes", fingerprint=fingerprint)
    """
    _write_module(tmp_path, "service/workers.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL009"], audit=False)
    assert [f.path for f in result.findings] == ["service/workers.py"]
    assert "EVENT_SPECS" in result.findings[0].message


def test_sl009_flags_dynamic_event_name(tmp_path):
    source = """
    class Shard:
        def finish(self, phase, fingerprint):
            self.events.emit(f"cell.{phase}", fingerprint=fingerprint)
    """
    _write_module(tmp_path, "service/workers.py", source)
    result = run_lint(paths=[tmp_path], rules=["SL009"], audit=False)
    assert len(result.findings) == 1
    assert "dynamically-built" in result.findings[0].message


def test_sl009_passes_declared_names(tmp_path):
    source = """
    class Shard:
        def serve(self, fingerprint):
            self.events.emit("cell.cache_hit", fingerprint=fingerprint)
            self.events.emit("cell.finished", fingerprint=fingerprint)
    """
    _write_module(tmp_path, "service/workers.py", source)
    assert run_lint(paths=[tmp_path], rules=["SL009"], audit=False).clean


def test_sl009_exempts_the_registry_module(tmp_path):
    # events.py forwards every record to the tracer with a dynamic
    # name by design — it *is* the validation layer.
    source = """
    class EventLog:
        def emit(self, name, **fields):
            self._tracer.emit(name, **fields)
    """
    _write_module(tmp_path, "service/events.py", source)
    assert run_lint(paths=[tmp_path], rules=["SL009"], audit=False).clean


def test_sl009_out_of_scope_passes(tmp_path):
    _write_module(tmp_path, "coherence/ctrl.py", """
    def snapshot(tracer):
        tracer.emit("made.up.event", detail=1)
    """)
    assert run_lint(paths=[tmp_path], rules=["SL009"], audit=False).clean


def test_sl009_service_source_tree_is_clean():
    """The real service package only emits declared events."""
    import repro.service.api as api_mod
    from pathlib import Path

    package_dir = Path(api_mod.__file__).parent.parent
    result = run_lint(paths=[package_dir], rules=["SL009"], audit=False)
    assert result.clean, [f.message for f in result.findings]


def test_syntax_error_reported_as_sl000(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    result = run_lint(paths=[tmp_path], audit=False)
    assert [f.rule for f in result.findings] == ["SL000"]


def test_runner_uses_monotonic_clock():
    """Regression (simlint SL001): MatrixRunner timed cells with
    time.time(); wall-time attribution must use perf_counter so the
    summary never depends on (or perturbs with) the wall clock."""
    import repro.experiments.runner as runner_mod

    result = run_lint(
        paths=[runner_mod.__file__], rules=["SL001"], audit=False
    )
    assert result.clean, [f.to_json() for f in result.findings]


def test_real_tree_is_clean():
    """The shipped sources must lint clean against the committed baseline."""
    from repro.lint.baseline import Baseline

    baseline = Baseline.load(Baseline.default_path())
    result = run_lint(baseline=baseline, audit=False)
    assert result.clean, [f.to_json() for f in result.findings]
    assert not result.unused_baseline
