"""Static protocol-table audit: clean on the real tables, loud on bugs."""

from __future__ import annotations

import pytest

import repro.lint.table_audit as ta
from repro.common.errors import ProtocolError
from repro.coherence.states import LineState
from repro.lint import run_lint
from repro.verify.mutations import apply_mutation


@pytest.fixture(autouse=True)
def fresh_audit_cache():
    """Isolate the shared audit cache around every test."""
    ta._AuditRule.reset_cache()
    yield
    ta._AuditRule.reset_cache()


@pytest.fixture
def patched_logic(monkeypatch):
    """Patch the audit's logic factory for one named protocol."""
    orig = ta._make_logic

    def install(protocol: str, mutate):
        def factory(name):
            logic = orig(name)
            if name == protocol:
                # Mutators may patch in place (return None) or, like
                # apply_mutation, return a patched fresh copy.
                logic = mutate(logic) or logic
            return logic

        monkeypatch.setattr(ta, "_make_logic", factory)

    return install


def test_real_tables_audit_clean():
    """All four protocols, both interconnects: zero unexplained rows."""
    audits = ta.audit_all()
    assert len(audits) == 8
    for audit in audits:
        label = f"{audit['protocol']}/{audit['interconnect']}"
        assert audit["crashed"] == [], label
        assert audit["illegal_unexpected"] == [], label
        assert audit["illegal_missing"] == [], label
        assert audit["unaccounted"] == [], label
        # Every dead row is explained by the coverage classifier.
        assert all(d["why"] for d in audit["dead_rows"]), label


def test_real_asymmetries_all_allowlisted():
    for directory in (False, True):
        diff = ta.diff_mesti_emesti(directory=directory)
        assert diff["violations"] == []
        assert diff["allowed"], "expected real, justified asymmetries"
        assert all(item["why"] for item in diff["allowed"])


def test_sl101_catches_crashing_row(patched_logic):
    def mutate(logic):
        def hole(line, state, result):
            raise KeyError("table hole")

        logic._apply_read = hole

    patched_logic("mesi", mutate)
    findings = list(ta.MissingRowRule().check_tree())
    assert findings
    assert all(f.rule == "SL101" for f in findings)
    assert any("KeyError" in f.message for f in findings)
    assert all(f.path.startswith("protocol:MESI/") for f in findings)


def test_sl102_catches_new_illegal_row(patched_logic):
    def mutate(logic):
        orig = logic._apply_validate

        def strict(line, state, _orig=orig):
            if state is LineState.T:
                raise ProtocolError("overzealous guard")
            _orig(line, state)

        logic._apply_validate = strict

    patched_logic("mesti", mutate)
    findings = list(ta.IllegalRowDriftRule().check_tree())
    assert any(
        "remote/T/Validate" in f.message and "not on the expected-illegal" in f.message
        for f in findings
    )


def test_sl102_catches_dropped_guard(patched_logic):
    def mutate(logic):
        logic._apply_validate = lambda line, state: None

    patched_logic("moesi", mutate)
    findings = list(ta.IllegalRowDriftRule().check_tree())
    dropped = [f for f in findings if "must raise ProtocolError" in f.message]
    assert {f.snippet for f in dropped} >= {
        "remote/M/Validate:missing-guard",
        "remote/E/Validate:missing-guard",
        "remote/O/Validate:missing-guard",
    }


def test_sl103_catches_unaccounted_row(monkeypatch):
    """A legal row the enumeration loses becomes an unexplained row."""
    import repro.verify.table as table

    orig = table.expected_rows

    def lossy(logic, directory=False):
        rows = orig(logic, directory=directory)
        if logic.name == "MESTI":
            rows.pop(("remote", "S", "Read"), None)
        return rows

    monkeypatch.setattr(table, "expected_rows", lossy)
    findings = list(ta.RowAccountingRule().check_tree())
    assert any(
        f.rule == "SL103" and f.snippet == "remote/S/Read" for f in findings
    )


def test_sl104_catches_unallowlisted_asymmetry(patched_logic):
    patched_logic("emesti", lambda logic: apply_mutation(logic, "validate-installs-m"))
    findings = list(ta.AsymmetryRule().check_tree())
    assert findings
    assert all(f.rule == "SL104" for f in findings)
    assert any("remote/T/Validate" in f.message for f in findings)


def test_full_lint_includes_audit_rules():
    result = run_lint(rules=["SL101", "SL102", "SL103", "SL104"])
    assert result.clean
    assert result.rules == ["SL101", "SL102", "SL103", "SL104"]


def test_expected_illegal_derivation():
    """The expected-illegal set tracks protocol capabilities."""
    mesi = ta.expected_illegal_rows(ta._make_logic("mesi"))
    moesi = ta.expected_illegal_rows(ta._make_logic("moesi"))
    assert ("M", "Upgrade") in mesi and ("E", "Validate") in mesi
    assert ("O", "Validate") in moesi and ("O", "Validate") not in mesi
