"""The whole-program layer's foundation: symbol table + call graph."""

from __future__ import annotations

import ast
import textwrap

from repro.lint.callgraph import build_project, walk_executed
from repro.lint.engine import ModuleSource


def _project(tmp_path, files: dict[str, str]):
    """Build a Project from {rel: source} the way the engine would."""
    modules = []
    for rel, src in files.items():
        text = '"""Fixture."""\n' + textwrap.dedent(src)
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        modules.append(ModuleSource(
            path=path, rel=rel, text=text,
            tree=ast.parse(text), lines=text.splitlines(),
        ))
    return build_project(modules)


def _fn(project, label: str):
    matches = [f for f in project.functions if f.label == label]
    assert matches, f"no function labelled {label}"
    return matches[0]


def test_collects_functions_and_classes(tmp_path):
    project = _project(tmp_path, {"service/queue.py": """
        class JobQueue:
            def submit(self, spec):
                return spec

        def helper():
            return 1
    """})
    labels = {f.label for f in project.functions}
    assert labels == {"JobQueue.submit", "helper"}
    submit = _fn(project, "JobQueue.submit")
    assert submit.qualname == "service/queue.py::JobQueue.submit"
    assert project.class_named("JobQueue", "service/queue.py") is not None


def test_constructor_assignment_types_attribute(tmp_path):
    """`self.queue = JobQueue(...)` types the attr; calls resolve."""
    project = _project(tmp_path, {"service/mod.py": """
        class JobQueue:
            def submit(self, spec):
                return spec

        class Api:
            def __init__(self):
                self.queue = JobQueue()

            def post(self, spec):
                return self.queue.submit(spec)
    """})
    api = project.class_named("Api", "service/mod.py")
    assert api.attr_types.get("queue") == "JobQueue"
    post = _fn(project, "Api.post")
    targets = [e.target.label for e in post.calls if e.target]
    assert "JobQueue.submit" in targets


def test_annotated_param_assignment_types_attribute(tmp_path):
    """The DI idiom: `def __init__(self, queue: JobQueue): self.queue
    = queue` must type the attribute through the parameter annotation
    (this is how the service wires every collaborator)."""
    project = _project(tmp_path, {"service/mod.py": """
        class JobQueue:
            def lease(self, worker):
                return None

        class Shard:
            def __init__(self, queue: JobQueue):
                self.queue = queue

            def step(self):
                return self.queue.lease("w0")
    """})
    shard = project.class_named("Shard", "service/mod.py")
    assert shard.attr_types.get("queue") == "JobQueue"
    step = _fn(project, "Shard.step")
    targets = [e.target.label for e in step.calls if e.target]
    assert targets == ["JobQueue.lease"]


def test_external_calls_carry_dotted_origin(tmp_path):
    project = _project(tmp_path, {"service/mod.py": """
        import time
        from urllib.request import urlopen


        def slow():
            time.sleep(1)
            urlopen("http://example.invalid")
    """})
    slow = _fn(project, "slow")
    externals = {e.external for e in slow.calls if e.external}
    assert "time.sleep" in externals
    assert "urllib.request.urlopen" in externals


def test_return_annotation_chains_method_resolution(tmp_path):
    """`self.store().save()` resolves through the return annotation."""
    project = _project(tmp_path, {"service/mod.py": """
        class Store:
            def save(self):
                return None

        class Owner:
            def store(self) -> Store:
                return Store()

            def flush(self):
                return self.store().save()
    """})
    flush = _fn(project, "Owner.flush")
    targets = [e.target.label for e in flush.calls if e.target]
    assert "Store.save" in targets


def test_lock_attrs_detected(tmp_path):
    project = _project(tmp_path, {"service/mod.py": """
        import threading


        class Guarded:
            def __init__(self):
                self._lock = threading.RLock()
                self.items = []
    """})
    cls = project.class_named("Guarded", "service/mod.py")
    assert cls.lock_attrs == {"_lock"}


def test_walk_executed_skips_deferred_bodies():
    """Nested def and lambda bodies are *defined*, not executed, so
    their calls must not appear — the property that lets
    `run_in_executor(None, fn)` offloading silence SL201."""
    tree = ast.parse(textwrap.dedent("""
        def outer():
            def inner():
                time.sleep(1)
            key = lambda x: id(x)
            direct()
    """))
    fn = tree.body[0]
    calls = [n for n in walk_executed(fn) if isinstance(n, ast.Call)]
    names = {getattr(c.func, "id", getattr(c.func, "attr", None))
             for c in calls}
    assert names == {"direct"}


def test_nested_def_calls_do_not_taint_the_enclosing_function(tmp_path):
    """A call inside a nested def is not an edge of the outer fn."""
    project = _project(tmp_path, {"service/mod.py": """
        import time


        def outer():
            def inner():
                time.sleep(1)
            return inner
    """})
    outer = _fn(project, "outer")
    assert not [e for e in outer.calls if e.external == "time.sleep"]


def test_edge_count_counts_resolved_internal_edges(tmp_path):
    project = _project(tmp_path, {"service/mod.py": """
        import time


        def a():
            time.sleep(1)


        def b():
            a()
    """})
    # b -> a resolves; a -> time.sleep is external and not counted.
    assert project.edge_count == 1
