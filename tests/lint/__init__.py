"""Tests for the simlint static analyzer (repro.lint)."""
