"""The ``repro-sim lint`` surface: exit codes, formats, baseline flags."""

from __future__ import annotations

import json

from repro.cli import main

BAD_SOURCE = '"""Fixture."""\nimport random\n\n\ndef roll():\n    return random.random()\n'


def test_lint_clean_tree_exits_zero(capsys):
    """The shipped tree lints clean with the committed baseline."""
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "simlint: clean" in out


def test_lint_violation_exits_one(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    assert main(["lint", str(tmp_path), "--baseline", "none"]) == 1
    out = capsys.readouterr().out
    assert "SL001" in out and "finding(s)" in out


def test_lint_bad_rule_exits_two(capsys):
    assert main(["lint", "--rule", "SL999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_lint_missing_explicit_baseline_exits_two(tmp_path, capsys):
    assert main(["lint", "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "baseline" in capsys.readouterr().err


def test_lint_json_output(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    code = main([
        "lint", str(tmp_path), "--baseline", "none",
        "--no-audit", "--format", "json",
    ])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["clean"] is False
    assert doc["findings"][0]["rule"] == "SL001"
    assert "audit" not in doc


def test_lint_rule_filter(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    assert main([
        "lint", str(tmp_path), "--baseline", "none",
        "--rule", "SL003", "--no-audit",
    ]) == 0
    assert "simlint: clean" in capsys.readouterr().out


def test_lint_update_baseline_round_trip(tmp_path, capsys):
    """--update-baseline with --justification makes the next run clean."""
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline),
        "--update-baseline", "--no-audit",
        "--justification", "fixture randomness is intentional",
    ]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    assert doc["version"] == 1 and doc["entries"]
    for entry in doc["entries"].values():
        assert entry["justification"] == "fixture randomness is intentional"
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline), "--no-audit",
    ]) == 0
    assert "baselined" in capsys.readouterr().out


def test_lint_update_baseline_without_justification_fails(tmp_path, capsys):
    """An unjustified baseline is written for editing but exits non-zero,
    and the placeholder entries refuse to load on the next run."""
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline),
        "--update-baseline", "--no-audit",
    ]) == 1
    err = capsys.readouterr().err
    assert "--justification" in err
    doc = json.loads(baseline.read_text())
    assert all(
        e["justification"] == "TODO: justify" for e in doc["entries"].values()
    )
    # The placeholder file cannot pass a gate: load() refuses it.
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline), "--no-audit",
    ]) == 2
    assert "placeholder" in capsys.readouterr().err


def test_lint_update_baseline_no_findings_needs_no_justification(tmp_path, capsys):
    """A clean tree baselines to an empty file without --justification."""
    (tmp_path / "mod.py").write_text('"""Fixture."""\nX = 1\n')
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline),
        "--update-baseline", "--no-audit",
    ]) == 0
    assert json.loads(baseline.read_text())["entries"] == {}


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SL001", "SL006", "SL101", "SL104"):
        assert rule_id in out


# ---------------------------------------------------------------------------
# --select / --stats and the SL2xx baseline interaction
# ---------------------------------------------------------------------------

SL201_SOURCE = (
    '"""Fixture."""\n'
    "import time\n\n\n"
    "async def handler():\n"
    "    time.sleep(1)\n"
)


def _write_service_fixture(tmp_path):
    service = tmp_path / "service"
    service.mkdir()
    (service / "api.py").write_text(SL201_SOURCE)


def test_lint_select_runs_only_matching_rules(tmp_path, capsys):
    """--select SL2 runs the whole-program layer and nothing else:
    the SL001-triggering randomness in the same tree stays silent."""
    _write_service_fixture(tmp_path)
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    assert main([
        "lint", str(tmp_path), "--baseline", "none",
        "--select", "SL2", "--no-audit",
    ]) == 1
    out = capsys.readouterr().out
    assert "SL201" in out and "SL001" not in out


def test_lint_select_unknown_prefix_exits_two(capsys):
    assert main(["lint", "--select", "SLX"]) == 2
    assert "matches no rule" in capsys.readouterr().err


def test_lint_stats_summary(tmp_path, capsys):
    _write_service_fixture(tmp_path)
    assert main([
        "lint", str(tmp_path), "--baseline", "none",
        "--select", "SL2", "--no-audit", "--stats",
    ]) == 1
    out = capsys.readouterr().out
    assert "new findings by rule: SL201=1" in out
    assert "call graph:" in out


def test_lint_sl2xx_baseline_round_trip(tmp_path, capsys):
    """A whole-program finding baselines and suppresses like any
    other: --update-baseline --justification, then a clean gate."""
    _write_service_fixture(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline),
        "--update-baseline", "--no-audit",
        "--justification", "demo sleep in a fixture coroutine",
    ]) == 0
    capsys.readouterr()
    doc = json.loads(baseline.read_text())
    assert [e["rule"] for e in doc["entries"].values()] == ["SL201"]
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline), "--no-audit",
    ]) == 0
    assert "baselined" in capsys.readouterr().out


def test_lint_upgraded_rule_id_is_not_silently_suppressed(tmp_path, capsys):
    """The fingerprint keys on the rule id: an entry baselined under
    one rule must not swallow the same line resurfacing under a new
    (e.g. upgraded whole-program) rule — and the stale entry is
    reported as unused."""
    from repro.lint import Baseline, Finding

    _write_service_fixture(tmp_path)
    old = Finding(
        rule="SL001", path="service/api.py", line=6,
        message="old-rule finding", snippet="time.sleep(1)",
    )
    baseline = tmp_path / "baseline.json"
    Baseline.from_findings(
        [old], justification="suppressed under the old rule id",
    ).save(baseline)
    assert main([
        "lint", str(tmp_path), "--baseline", str(baseline),
        "--select", "SL2", "--no-audit",
    ]) == 1
    out = capsys.readouterr().out
    assert "SL201" in out
    assert "matched nothing" in out  # the SL001 entry is stale
