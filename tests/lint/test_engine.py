"""Engine plumbing: baselines, fingerprints, JSON schema, rule selection."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.lint import ALL_RULES, Baseline, Finding, run_lint

BAD_SOURCE = '"""Fixture."""\nimport random\n\n\ndef roll():\n    return random.random()\n'


@pytest.fixture
def findings(tmp_path):
    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    return run_lint(paths=[tmp_path], audit=False).findings


def test_fingerprint_survives_line_shifts(tmp_path, findings):
    """Adding code above a finding must not invalidate its baseline entry."""
    (tmp_path / "mod.py").write_text(
        '"""Fixture."""\nimport random\n\nPADDING = 1\nMORE = 2\n\n\ndef roll():\n'
        "    return random.random()\n"
    )
    shifted = run_lint(paths=[tmp_path], audit=False).findings
    assert [f.fingerprint for f in shifted] == [f.fingerprint for f in findings]
    assert shifted[0].line != findings[0].line


def test_baseline_round_trip(tmp_path, findings):
    """save -> load -> partition suppresses exactly the recorded findings."""
    baseline = Baseline.from_findings(findings, justification="known wart")
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    new, suppressed, unused = loaded.partition(findings)
    assert new == [] and len(suppressed) == len(findings) and unused == []


def test_baseline_requires_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": {"deadbeef": {"rule": "SL001", "path": "x.py", "justification": ""}},
    }))
    with pytest.raises(ConfigError, match="justification"):
        Baseline.load(path)


@pytest.mark.parametrize("justification", ["   \t  ", "ok", "wip", "fine now"])
def test_baseline_rejects_vacuous_justifications(tmp_path, justification):
    """Whitespace-only and sub-10-character grunts are not
    explanations; load() refuses them like the placeholder."""
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": {"deadbeef": {
            "rule": "SL001", "path": "x.py",
            "justification": justification,
        }},
    }))
    with pytest.raises(ConfigError, match="justification|too short"):
        Baseline.load(path)


def test_baseline_accepts_minimal_real_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "entries": {"deadbeef": {
            "rule": "SL001", "path": "x.py",
            "justification": "seeded rng in a demo script",
        }},
    }))
    assert "deadbeef" in Baseline.load(path).entries


def test_baseline_rejects_bad_documents(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigError, match="not found"):
        Baseline.load(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{")
    with pytest.raises(ConfigError, match="JSON"):
        Baseline.load(bad)
    wrong = tmp_path / "v2.json"
    wrong.write_text(json.dumps({"version": 2, "entries": {}}))
    with pytest.raises(ConfigError, match="version-1"):
        Baseline.load(wrong)


def test_stale_baseline_entry_reported(tmp_path):
    (tmp_path / "clean.py").write_text('"""Clean."""\n')
    baseline = Baseline({"feedface00000000": {
        "rule": "SL001", "path": "gone.py", "snippet": "x",
        "justification": "covered code was deleted",
    }})
    result = run_lint(paths=[tmp_path], baseline=baseline, audit=False)
    assert result.clean
    assert result.unused_baseline == ["feedface00000000"]


def test_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="SL999"):
        run_lint(rules=["SL999"], audit=False)


def test_rule_registry_is_stable():
    """The documented rule set: AST + whole-program + audit rules."""
    assert sorted(ALL_RULES) == [
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
        "SL008", "SL009",
        "SL101", "SL102", "SL103", "SL104",
        "SL201", "SL202", "SL203", "SL204", "SL205",
    ]
    for rule_id, cls in ALL_RULES.items():
        rule = cls()
        assert rule.id == rule_id
        assert rule.title and rule.rationale


def test_json_schema(tmp_path):
    """The --format json document shape CI depends on."""
    from repro.lint.report import render_json

    (tmp_path / "mod.py").write_text(BAD_SOURCE)
    result = run_lint(paths=[tmp_path], audit=False)
    doc = json.loads(render_json(result, audit=False))
    assert set(doc) == {
        "version", "clean", "files_scanned", "rules",
        "findings", "suppressed", "unused_baseline", "stats",
    }
    assert doc["version"] == 1 and doc["clean"] is False
    assert doc["stats"]["files_scanned"] == doc["files_scanned"]
    for finding in doc["findings"]:
        assert set(finding) == {
            "rule", "path", "line", "message", "snippet", "fingerprint",
        }
        assert finding["rule"].startswith("SL")
        assert isinstance(finding["line"], int)
        assert len(finding["fingerprint"]) == 16


def test_json_schema_with_audit():
    """With the audit layer on, the document grows an 'audit' section."""
    from repro.lint.report import render_json

    result = run_lint(audit=True)
    doc = json.loads(render_json(result, audit=True))
    audit = doc["audit"]
    assert {a["protocol"] for a in audit["protocols"]} == {
        "MESI", "MOESI", "MESTI", "E-MOESTI",
    }
    for entry in audit["protocols"]:
        assert entry["rows_reachable"] > 0
        assert entry["crashed"] == []
        assert entry["unaccounted"] == []
        for dead in entry["dead_rows"]:
            assert dead["why"]
    assert set(audit["mesti_vs_emesti"]) == {"bus", "directory"}


def test_finding_is_plain_data():
    finding = Finding(rule="SL001", path="a.py", line=3, message="m", snippet="s")
    assert finding.to_json()["fingerprint"] == finding.fingerprint
    assert finding == Finding(rule="SL001", path="a.py", line=3, message="m", snippet="s")
