"""Provenance analyzer: attribution, reconciliation, the explain gate."""

import json

import pytest

from repro.common.config import scaled_config
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import (
    MISS_CLASSES,
    analyze_events,
    line_chain,
    reconcile,
    reconciliation_ok,
    render_provenance,
)
from repro.obs.tracer import Tracer
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


def _traced_run(technique="emesti+lvp", scale=0.2, seed=1, procs=4):
    config = configure_technique(scaled_config(n_procs=procs), technique)
    tracer = Tracer()
    metrics = MetricsRegistry()
    system = System(
        config, get_benchmark("locks", scale=scale), seed=seed,
        tracer=tracer, metrics=metrics,
    )
    system.run()
    return tracer, metrics


@pytest.fixture(scope="module")
def locks_run():
    return _traced_run()


class TestAcceptance:
    """ISSUE acceptance: >=95% attribution and exact validate totals."""

    def test_attribution_rate_on_locks(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert report.comm_misses > 0, "locks must produce comm misses"
        assert report.attribution_rate >= 0.95

    def test_validate_totals_reconcile_exactly(self, locks_run):
        tracer, metrics = locks_run
        report = analyze_events(tracer.events)
        rows = {r["name"]: r for r in reconcile(report, metrics)}
        for name in ("validates.broadcast", "validates.suppressed",
                     "validates.cancelled", "validates.useful",
                     "validates.useless", "revalidations"):
            assert rows[name]["ok"], (
                f"{name}: trace={rows[name]['trace']} "
                f"!= counter={rows[name]['counter']}"
            )

    def test_miss_totals_reconcile_exactly(self, locks_run):
        tracer, metrics = locks_run
        report = analyze_events(tracer.events)
        assert reconciliation_ok(reconcile(report, metrics))

    def test_spans_balanced_on_full_run(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert report.spans["open"] == 0
        assert report.spans["truncated"] == 0


class TestClassification:
    def test_classes_partition_comm_misses(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert sum(report.comm_classes.values()) == report.comm_misses
        assert set(report.comm_classes) <= set(MISS_CLASSES)

    def test_lvp_class_present_with_lvp(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert report.comm_classes.get("lvp", 0) > 0

    def test_tss_subclasses_follow_technique(self):
        # Under the base protocol no validate machinery acts, so every
        # temporally-silent comm miss must land in tss.unexploited.
        tracer, _ = _traced_run(technique="base")
        report = analyze_events(tracer.events)
        assert report.comm_classes.get("tss.validated", 0) == 0
        assert report.comm_classes.get("tss.suppressed", 0) == 0

    def test_histograms_populated_under_emesti(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert report.ivd["count"] > 0
        assert report.ivd["min"] >= 1  # a silent pair needs >=1 divergence
        total = report.silence_lifetime["count"] + report.silence_lifetime["censored"]
        assert total == report.ivd["count"]

    def test_per_line_tallies_sum_to_totals(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        assert sum(lp.comm for lp in report.lines.values()) == report.comm_misses
        assert sum(lp.misses for lp in report.lines.values()) == report.misses_total

    def test_line_chain_is_chronological(self, locks_run):
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        base = report.top_lines(1)[0].base
        chain = line_chain(tracer.events, base, limit=50)
        assert chain and all(e["base"] == base for e in chain)
        assert [e["ts"] for e in chain] == sorted(e["ts"] for e in chain)


class TestReporting:
    def test_to_json_is_serializable(self, locks_run):
        tracer, metrics = locks_run
        report = analyze_events(tracer.events)
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["schema"] == 1
        assert doc["misses"]["attribution_rate"] >= 0.95
        assert doc["top_lines"]

    def test_render_text_mentions_reconciliation(self, locks_run):
        tracer, metrics = locks_run
        report = analyze_events(tracer.events)
        text = render_provenance(report, reconcile(report, metrics))
        assert "miss provenance" in text
        assert "metrics reconciliation" in text
        assert "MISMATCH" not in text

    def test_cell_summary_is_compact(self, locks_run):
        tracer, _ = locks_run
        summary = analyze_events(tracer.events).cell_summary()
        assert set(summary) == {
            "comm_misses", "attributed", "attribution_rate",
            "classes", "validates", "spans",
        }


class TestReconcileFailureDetection:
    def test_mismatch_is_detected(self, locks_run):
        # A doctored registry (one missing broadcast) must not pass.
        tracer, _ = locks_run
        report = analyze_events(tracer.events)
        doctored = MetricsRegistry()
        rows = reconcile(report, doctored)
        assert not reconciliation_ok(rows)


class TestRunnerProvenance:
    def test_run_cell_attaches_cell_summary(self):
        from repro.experiments.runner import run_cell
        from repro.system.techniques import configure_technique as ct

        config = configure_technique(scaled_config(n_procs=4), "emesti")
        summary = run_cell(config, "locks", 0.05, 1, True)
        prov = summary["provenance"]
        assert prov["comm_misses"] >= 0
        assert prov["spans"]["open"] == 0

    def test_untraced_summary_identical(self):
        from repro.experiments.runner import run_cell

        config = configure_technique(scaled_config(n_procs=4), "emesti")
        traced = run_cell(config, "locks", 0.05, 1, True)
        plain = run_cell(config, "locks", 0.05, 1)
        assert "provenance" not in plain
        strip = ("provenance", "wall_seconds", "worker", "retries")
        assert {k: v for k, v in traced.items() if k not in strip} == \
               {k: v for k, v in plain.items() if k not in strip}

    def test_manifest_records_provenance(self, tmp_path):
        from repro.experiments.runner import MatrixRunner

        runner = MatrixRunner(
            scaled_config(n_procs=4), scale=0.05, results_dir=tmp_path,
            verbose=False, provenance=True,
        )
        runner.run_matrix(
            benchmarks=["locks"], techniques=["emesti"], seeds=(1,)
        )
        runner.close()
        cell = runner.manifest.cells["locks|emesti|1"]
        assert "provenance" in cell
        assert cell["provenance"]["attribution_rate"] >= 0.95

    def test_untraced_manifest_has_no_provenance_key(self, tmp_path):
        from repro.experiments.runner import MatrixRunner

        runner = MatrixRunner(
            scaled_config(n_procs=4), scale=0.05, results_dir=tmp_path,
            verbose=False,
        )
        runner.run_matrix(
            benchmarks=["locks"], techniques=["emesti"], seeds=(1,)
        )
        runner.close()
        assert "provenance" not in runner.manifest.cells["locks|emesti|1"]
