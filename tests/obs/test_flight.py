"""FlightRecorder: buffering, atomic flush, debounce, postmortem."""

from __future__ import annotations

import json

import pytest

from repro.obs.flight import (
    FLIGHT_FORMAT,
    FlightRecorder,
    load_flight,
    render_postmortem,
)


def _recorder(tmp_path, **kwargs):
    ticks = iter(x / 10 for x in range(1, 10_000))
    return FlightRecorder(
        tmp_path / "flight.json", clock=lambda: next(ticks), **kwargs,
    )


class TestBuffering:
    def test_event_sample_note_rings_are_bounded(self, tmp_path):
        rec = _recorder(tmp_path, events=2, samples=2, notes=2)
        for i in range(4):
            rec.record_event({"seq": i, "event": "cell.finished"})
            rec.record_sample({"ts": i})
            rec.note("n", i=i)
        doc = rec.snapshot()
        assert [e["seq"] for e in doc["events"]] == [2, 3]
        assert len(doc["samples"]) == 2 and len(doc["notes"]) == 2
        assert doc["recorded"] == 4

    def test_snapshot_copies_records(self, tmp_path):
        rec = _recorder(tmp_path)
        rec.record_event({"seq": 1, "event": "cell.finished"})
        rec.snapshot()["events"][0]["seq"] = 99
        assert rec.snapshot()["events"][0]["seq"] == 1


class TestFlush:
    def test_flush_writes_atomic_parseable_document(self, tmp_path):
        rec = _recorder(tmp_path)
        rec.record_event({"seq": 1, "event": "job.enqueued", "job": "j1"})
        assert rec.flush() is True
        doc = load_flight(tmp_path / "flight.json")
        assert doc["format"] == FLIGHT_FORMAT
        assert doc["events"][0]["job"] == "j1"
        assert not (tmp_path / "flight.json.tmp").exists()

    def test_flush_skips_when_clean(self, tmp_path):
        rec = _recorder(tmp_path)
        rec.record_event({"seq": 1, "event": "cell.finished"})
        assert rec.flush() is True
        assert rec.flush() is False  # nothing new

    def test_flush_debounces_within_min_interval(self, tmp_path):
        rec = _recorder(tmp_path, min_interval=1000.0)
        rec.record_event({"seq": 1, "event": "cell.finished"})
        assert rec.flush() is True
        rec.record_event({"seq": 2, "event": "cell.finished"})
        assert rec.flush() is False  # dirty, but inside the window
        assert rec.flush(force=True) is True

    def test_close_forces_final_flush(self, tmp_path):
        rec = _recorder(tmp_path, min_interval=1000.0)
        rec.record_event({"seq": 1, "event": "cell.finished"})
        rec.flush()
        rec.record_event({"seq": 2, "event": "cell.finished"})
        rec.close()
        doc = load_flight(tmp_path / "flight.json")
        assert [e["seq"] for e in doc["events"]] == [1, 2]

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not-flight.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a flight-recorder"):
            load_flight(path)


class TestPostmortem:
    def _doc(self):
        return {
            "format": FLIGHT_FORMAT,
            "recorded": 6,
            "events": [
                {"seq": 1, "event": "job.enqueued", "job": "job-1",
                 "cells": 2},
                {"seq": 2, "event": "cell.leased", "fingerprint": "f0"},
                {"seq": 3, "event": "job.enqueued", "job": "job-2",
                 "cells": 1},
                {"seq": 4, "event": "job.completed", "job": "job-2",
                 "reason": "done"},
            ],
            "samples": [
                {"ts": 5.0, "queued": 3, "leased": 1, "busy": 1,
                 "workers": 2, "utilization": 0.5},
            ],
            "notes": [{"ts": 4.0, "note": "events.dropped", "dropped": 1}],
        }

    def test_interrupted_job_is_flagged(self):
        text = render_postmortem(self._doc())
        assert "job-1" in text and "<- interrupted" in text
        # The cleanly finished job is not flagged.
        job2_line = next(x for x in text.splitlines() if "job-2" in x)
        assert "interrupted" not in job2_line

    def test_vitals_notes_and_tail_rendered(self):
        text = render_postmortem(self._doc(), tail=2)
        assert "queued=3" in text and "utilization=0.5" in text
        assert "events.dropped (dropped=1)" in text
        assert "newest 2 events:" in text
        assert "job.completed" in text

    def test_empty_document_renders(self):
        text = render_postmortem({"format": FLIGHT_FORMAT})
        assert "(none recorded)" in text
