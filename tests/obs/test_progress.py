"""Parallel-run telemetry: cell updates, live rendering, manifests."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.progress import CellUpdate, MatrixProgress, RunManifest


class TtyStringIO(io.StringIO):
    def isatty(self):
        return True


class TestCellUpdate:
    def test_kinds_are_validated(self):
        CellUpdate("start", "radiosity|base|1")
        with pytest.raises(ValueError, match="unknown cell update kind"):
            CellUpdate("begin", "radiosity|base|1")

    def test_defaults(self):
        event = CellUpdate("finish", "k")
        assert event.worker is None
        assert event.retries == 0
        assert event.error is None


class TestMatrixProgress:
    def feed(self, progress):
        progress.update(CellUpdate("start", "a|base|1"))
        progress.update(CellUpdate("start", "b|base|1"))
        progress.update(
            CellUpdate("finish", "a|base|1", worker=123, wall_seconds=2.125)
        )
        progress.update(CellUpdate("retry", "b|base|1", error="boom"))
        progress.update(
            CellUpdate("finish", "b|base|1", worker=124, wall_seconds=0.5)
        )

    def test_counts(self):
        progress = MatrixProgress(total=4, stream=io.StringIO())
        self.feed(progress)
        assert progress.done == 2
        assert progress.running == 0
        assert progress.retried == 1
        assert progress.last.key == "b|base|1"

    def test_live_rendering_rewrites_one_line(self):
        stream = TtyStringIO()
        progress = MatrixProgress(total=4, label="bench", stream=stream)
        assert progress.live
        self.feed(progress)
        progress.close()
        text = stream.getvalue()
        assert "\r" in text
        assert "bench 2/4 done" in text
        assert "1 retried" in text
        assert "last b|base|1 0.5s" in text
        assert text.endswith("\n")  # close() finishes the line

    def test_non_tty_logs_failures_only(self, caplog):
        progress = MatrixProgress(total=4, stream=io.StringIO())
        assert not progress.live
        with caplog.at_level(logging.INFO, logger="repro.progress"):
            self.feed(progress)
            progress.close()
        messages = [
            rec.getMessage() for rec in caplog.records
            if rec.name == "repro.progress"
        ]
        assert len(messages) == 1
        assert "retry b|base|1: boom" in messages[0]

    def test_live_override(self):
        stream = io.StringIO()  # no isatty -> would default to False
        progress = MatrixProgress(total=1, stream=stream, live=True)
        progress.update(CellUpdate("finish", "a|base|1"))
        assert "1/1 done" in stream.getvalue()


class TestRunManifest:
    def make(self):
        manifest = RunManifest(
            label="bench", scale=0.05, fingerprint="abcd1234", workers=2
        )
        manifest.record("a|base|1", "ran", worker=123, retries=1,
                        wall_seconds=2.0)
        manifest.record("a|emesti|1", "cached")
        return manifest

    def test_counts(self):
        manifest = self.make()
        assert manifest.ran == 1
        assert manifest.cached == 1
        assert manifest.retries == 1

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError, match="unknown manifest status"):
            self.make().record("x", "skipped")

    def test_rerecord_overwrites(self):
        manifest = self.make()
        manifest.record("a|base|1", "cached")
        assert manifest.ran == 0
        assert manifest.cached == 2

    def test_save_load_round_trip(self, tmp_path):
        manifest = self.make()
        path = manifest.save(tmp_path / "m.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.to_json()["schema"] == RunManifest.SCHEMA

    def test_saved_manifest_is_byte_stable(self, tmp_path):
        # A fully cached rerun must rewrite the identical file, so CI
        # diffs stay quiet: no wall-clock dates, sorted keys.
        first = self.make().save(tmp_path / "a.json").read_text()
        second = self.make().save(tmp_path / "b.json").read_text()
        assert first == second
