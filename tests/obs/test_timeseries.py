"""TelemetryStore: ring bounds, projections, JSON export schema."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import SAMPLE_COLUMNS, TelemetryStore


def _sample(ts, **over):
    row = {col: 0 for col in SAMPLE_COLUMNS}
    row["ts"] = ts
    row.update(over)
    return row


class TestRecording:
    def test_sample_without_ts_is_rejected(self):
        store = TelemetryStore()
        with pytest.raises(ValueError, match="ts"):
            store.record({"queued": 1})

    def test_latest_and_len(self):
        store = TelemetryStore()
        assert store.latest() is None
        store.record(_sample(1, queued=3))
        store.record(_sample(2, queued=5))
        assert len(store) == 2
        assert store.latest()["queued"] == 5

    def test_capacity_evicts_oldest(self):
        store = TelemetryStore(capacity=3)
        for i in range(5):
            store.record(_sample(i))
        assert [r["ts"] for r in store.rows()] == [2, 3, 4]

    def test_rows_are_copies(self):
        store = TelemetryStore()
        store.record(_sample(1))
        store.rows()[0]["queued"] = 99
        assert store.latest()["queued"] == 0


class TestProjection:
    def test_series_projects_one_column(self):
        store = TelemetryStore()
        store.record(_sample(1, leased=2))
        store.record(_sample(2, leased=4))
        assert store.series("leased") == [(1, 2), (2, 4)]

    def test_series_limit_takes_newest(self):
        store = TelemetryStore()
        for i in range(4):
            store.record(_sample(i, queued=i))
        assert store.series("queued", limit=2) == [(2, 2), (3, 3)]


class TestExport:
    def test_to_json_schema(self):
        store = TelemetryStore(capacity=8)
        for i in range(3):
            store.record(_sample(i, busy=i))
        doc = store.to_json()
        assert doc["schema"] == 1
        assert doc["capacity"] == 8
        assert doc["recorded"] == 3
        assert doc["columns"] == list(SAMPLE_COLUMNS)
        assert doc["latest"]["busy"] == 2
        assert len(doc["samples"]) == 3

    def test_to_json_empty(self):
        doc = TelemetryStore().to_json()
        assert doc["latest"] is None and doc["samples"] == []

    def test_recorded_outlives_eviction(self):
        store = TelemetryStore(capacity=2)
        for i in range(5):
            store.record(_sample(i))
        doc = store.to_json()
        assert doc["recorded"] == 5 and len(doc["samples"]) == 2
