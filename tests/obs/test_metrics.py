"""The metrics registry: families, labels, exports, and parity.

The load-bearing contracts:

* ``bound_counter`` keeps the legacy stats counter and the metric
  series in lockstep (parity by construction), and ``NULL_METRICS``
  still counts the stats side;
* a metrics-enabled run exports the paper-level counters as named
  series whose totals equal the ``summarize()`` fields the figures
  read;
* enabling metrics does not perturb the simulation (identical stats
  snapshot with metrics on and off).
"""

from __future__ import annotations

import json

import pytest

from repro.common.stats import CounterHandle, Histogram, StatsRegistry
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    MirroredCounter,
    _NullMetrics,
)


class TestRegistry:
    def test_counter_family_and_series(self):
        m = MetricsRegistry()
        fam = m.counter("repro_widgets_total", "Widgets", labels=("kind",))
        fam.labels(kind="a").inc()
        fam.labels(kind="a").inc(2)
        fam.labels(kind="b").inc()
        assert m.get("repro_widgets_total", kind="a") == 3
        assert m.get("repro_widgets_total", kind="b") == 1
        assert m.total("repro_widgets_total") == 4

    def test_reregistration_is_idempotent(self):
        m = MetricsRegistry()
        first = m.counter("repro_x_total", "X", labels=("node",))
        again = m.counter("repro_x_total", labels=("node",))
        assert again is first
        assert again.help == "X"  # help survives a bare re-registration

    def test_conflicting_reregistration_raises(self):
        m = MetricsRegistry()
        m.counter("repro_x_total", labels=("node",))
        with pytest.raises(ValueError, match="already registered"):
            m.gauge("repro_x_total", labels=("node",))
        with pytest.raises(ValueError, match="already registered"):
            m.counter("repro_x_total", labels=("other",))

    def test_invalid_names_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            m.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            m.counter("repro_ok_total", labels=("bad-label",))

    def test_label_kwargs_must_match_family(self):
        m = MetricsRegistry()
        fam = m.counter("repro_x_total", labels=("node",))
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels(node=0, extra=1)
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels()

    def test_label_values_are_stringified(self):
        m = MetricsRegistry()
        fam = m.counter("repro_x_total", labels=("node",))
        fam.labels(node=3).inc()
        assert m.get("repro_x_total", node="3") == 1
        assert fam.labels(node="3").value == 1

    def test_missing_series_reads_zero(self):
        m = MetricsRegistry()
        assert m.get("repro_never_registered") == 0.0
        assert m.total("repro_never_registered") == 0.0
        m.counter("repro_x_total", labels=("node",))
        assert m.get("repro_x_total", node=9) == 0.0


class TestMirroredCounter:
    def test_parity_with_stats(self):
        registry = StatsRegistry()
        stats = registry.scoped("ctrl0")
        m = MetricsRegistry()
        handle = m.bound_counter(
            stats, "ts_stores", "repro_ts_stores_total", "TS stores", node=0
        )
        assert isinstance(handle, MirroredCounter)
        handle.inc()
        handle.inc(4)
        assert stats.get("ts_stores") == 5
        assert m.get("repro_ts_stores_total", node=0) == 5
        assert handle.value == 5
        assert handle.name == "ctrl0.ts_stores"

    def test_null_metrics_still_counts_stats(self):
        registry = StatsRegistry()
        stats = registry.scoped("ctrl0")
        handle = NULL_METRICS.bound_counter(
            stats, "ts_stores", "repro_ts_stores_total", node=0
        )
        assert isinstance(handle, CounterHandle)
        handle.inc(3)
        assert stats.get("ts_stores") == 3


class TestHistogramBinding:
    def test_bind_exports_existing_histogram(self):
        m = MetricsRegistry()
        hist = Histogram()
        bound = m.bind_histogram(hist, "repro_lat_cycles", "Latency", node=0)
        assert bound is hist  # same object: no double recording
        hist.record(8)
        hist.record(100)
        doc = m.to_json()
        (entry,) = doc["series"]
        assert entry["name"] == "repro_lat_cycles"
        assert entry["labels"] == {"node": "0"}
        assert entry["histogram"]["count"] == 2


class TestExports:
    def make(self):
        m = MetricsRegistry()
        fam = m.counter("repro_x_total", "Things counted", labels=("kind",))
        fam.labels(kind="b").inc(2)
        fam.labels(kind="a").inc()
        m.gauge("repro_level").labels().set(7)
        hist = m.bind_histogram(Histogram(), "repro_lat", "Lat", node=0)
        hist.record(3, 2)
        return m

    def test_to_json_is_sorted_and_diffable(self):
        doc = self.make().to_json()
        assert doc["schema"] == 1
        names = [(e["name"], tuple(e["labels"].values())) for e in doc["series"]]
        assert names == sorted(names)
        json.dumps(doc)  # must be JSON-safe

    def test_prometheus_text_format(self):
        text = self.make().to_prometheus()
        assert "# HELP repro_x_total Things counted" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 1' in text
        assert 'repro_x_total{kind="b"} 2' in text
        assert "# TYPE repro_level gauge" in text
        assert "repro_level 7" in text  # no labels -> bare name
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{node="0",le="+Inf"} 2' in text
        assert 'repro_lat_sum{node="0"} 6' in text
        assert 'repro_lat_count{node="0"} 2' in text
        assert text.endswith("\n")

    def test_prometheus_histogram_buckets_are_cumulative(self):
        m = MetricsRegistry()
        hist = m.bind_histogram(Histogram(), "repro_lat", node=0)
        for value in (1, 2, 4, 1000):
            hist.record(value)
        text = m.to_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        assert counts == sorted(counts)  # cumulative by definition
        assert counts[-1] == 4  # +Inf bucket sees everything

    def test_label_value_escaping(self):
        m = MetricsRegistry()
        m.counter("repro_x_total", labels=("name",)).labels(
            name='he said "hi"\\\n'
        ).inc()
        text = m.to_prometheus()
        assert '{name="he said \\"hi\\"\\\\\\n"}' in text


class TestNullMetrics:
    def test_not_a_registry_subclass(self):
        assert not isinstance(NULL_METRICS, MetricsRegistry)
        assert isinstance(NULL_METRICS, _NullMetrics)

    def test_families_are_shared_noops(self):
        fam = NULL_METRICS.counter("repro_anything_total", labels=("x",))
        assert fam is NULL_METRICS.gauge("repro_other")
        series = fam.labels(x=1)
        series.inc()
        series.set(9)
        series.record(3)  # all discarded, nothing raises

    def test_bind_histogram_returns_hist_unchanged(self):
        hist = Histogram()
        assert NULL_METRICS.bind_histogram(hist, "repro_lat", node=0) is hist


@pytest.fixture(scope="module")
def instrumented_run():
    """One small metrics-enabled run plus its summarize() view."""
    from repro.common.config import scaled_config
    from repro.experiments.runner import summarize
    from repro.system.system import System
    from repro.system.techniques import configure_technique
    from repro.workloads.registry import get_benchmark

    config = configure_technique(scaled_config(), "emesti+lvp")
    metrics = MetricsRegistry()
    system = System(
        config, get_benchmark("radiosity", scale=0.05), seed=1, metrics=metrics
    )
    result = system.run()
    return metrics, summarize(result), result


class TestRunParity:
    """Metric series vs the summarize() counters the figures read."""

    def test_paper_counters_match_summary(self, instrumented_run):
        metrics, summary, _ = instrumented_run
        assert metrics.total("repro_ts_stores_total") == summary["ts_stores"]
        assert metrics.total("repro_misses_total") == summary["miss_total"]
        for cause, key in (
            ("tss", "miss_comm_tss"),
            ("false", "miss_comm_false"),
            ("true", "miss_comm_true"),
        ):
            assert metrics.get(
                "repro_comm_misses_total", cause=cause
            ) == summary[key], cause

    def test_validates_by_outcome_match_summary(self, instrumented_run):
        metrics, summary, result = instrumented_run
        n = result.config.n_procs
        for outcome, key in (
            ("broadcast", "validates_broadcast"),
            ("suppressed", "validates_suppressed"),
        ):
            total = sum(
                metrics.get("repro_validates_total", node=i, outcome=outcome)
                for i in range(n)
            )
            assert total == summary[key], outcome

    def test_predictor_transitions_match_summary(self, instrumented_run):
        metrics, summary, result = instrumented_run
        n = result.config.n_procs
        useful = sum(
            metrics.get(
                "repro_predictor_transitions_total", node=i, cause=cause
            )
            for i in range(n)
            for cause in ("external_request", "useful_snoop")
        )
        useless = sum(
            metrics.get(
                "repro_predictor_transitions_total", node=i, cause="useless_snoop"
            )
            for i in range(n)
        )
        assert useful == summary["validates_useful"]
        assert useless == summary["validates_useless"]

    def test_lvp_series_match_summary(self, instrumented_run):
        metrics, summary, _ = instrumented_run
        assert metrics.total("repro_lvp_predictions_total") == summary[
            "lvp_predictions"
        ]
        for outcome, key in (
            ("verified", "lvp_correct"),
            ("squashed", "lvp_mispredictions"),
        ):
            total = sum(
                s.value
                for f in metrics.families()
                if f.name == "repro_lvp_resolutions_total"
                for s in f.series()
                if s.labels["outcome"] == outcome
            )
            assert total == summary[key], outcome

    def test_run_gauges_match_result(self, instrumented_run):
        metrics, _, result = instrumented_run
        assert metrics.get("repro_run_cycles") == result.cycles
        assert metrics.get("repro_run_committed") == result.committed

    def test_result_carries_registry(self, instrumented_run):
        metrics, _, result = instrumented_run
        assert result.metrics is metrics

    def test_metrics_do_not_perturb_the_simulation(self):
        from repro.common.config import scaled_config
        from repro.system.system import System
        from repro.system.techniques import configure_technique
        from repro.workloads.registry import get_benchmark

        def snapshot(metrics):
            config = configure_technique(scaled_config(), "emesti+lvp")
            system = System(
                config, get_benchmark("radiosity", scale=0.02), seed=1,
                metrics=metrics,
            )
            system.run()
            return system.stats.snapshot()

        assert snapshot(None) == snapshot(MetricsRegistry())
