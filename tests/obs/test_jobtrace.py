"""JobTraceStore: minting, ingest, bounds, eviction, JSONL export."""

from __future__ import annotations

import json
import threading

from repro.obs.jobtrace import JobTraceStore


def _store(**kwargs):
    ticks = iter(range(1, 10_000))
    return JobTraceStore(clock=lambda: next(ticks), **kwargs)


class TestMinting:
    def test_span_ids_are_unique_and_rows_recorded(self):
        store = _store()
        a = store.span_begin("t-1", "job", job="job-1")
        b = store.span_begin("t-1", "cell.lease", parent=a, worker="w0")
        assert a != b
        store.span_end("t-1", b, outcome="done")
        store.span_end("t-1", a, reason="done")
        rows = store.events("t-1")
        assert [r["kind"] for r in rows] == [
            "span.begin", "span.begin", "span.end", "span.end",
        ]
        assert rows[1]["parent"] == a
        assert all(r["trace"] == "t-1" for r in rows if "trace" in r)

    def test_span_end_none_is_noop(self):
        store = _store()
        store.span_end("t-1", None)
        assert store.events("t-1") == []

    def test_minting_is_thread_safe(self):
        store = JobTraceStore()
        ids: list[int] = []
        lock = threading.Lock()

        def mint():
            got = [store.span_begin("t-1", "cell.lease") for _ in range(200)]
            with lock:
                ids.extend(got)

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 800


class TestIngest:
    def test_worker_spans_get_cycle_clock_rows(self):
        store = _store()
        run = store.span_begin("t-1", "cell.run")
        store.ingest("t-1", [
            {"span": 5000, "name": "miss", "node": 2, "base": 0x100,
             "begin": 10, "end": 20, "parent": run,
             "fields": {"cause": "comm"}},
            {"span": 5001, "name": "stall", "begin": 15, "end": None,
             "parent": 5000, "fields": {}},
        ])
        rows = store.events("t-1")
        begins = [r for r in rows if r["kind"] == "span.begin"]
        ends = [r for r in rows if r["kind"] == "span.end"]
        worker = [r for r in begins if r.get("clock") == "cycles"]
        assert len(worker) == 2
        assert worker[0]["cause"] == "comm" and worker[0]["node"] == 2
        # Only the closed worker span gets an end row.
        assert [r["span"] for r in ends] == [5000]

    def test_ingest_truncation_is_accounted(self):
        store = _store()
        store.ingest("t-1", [], truncated=7)
        assert store.dropped("t-1") == 7


class TestBounds:
    def test_per_trace_event_cap_drops_and_counts(self):
        store = _store(max_events=3)
        for _ in range(5):
            store.span_begin("t-1", "cell.lease")
        assert len(store.events("t-1")) == 3
        assert store.dropped("t-1") == 2

    def test_oldest_trace_evicted_whole(self):
        store = _store(max_traces=2)
        for i in range(3):
            store.span_begin(f"t-{i}", "job")
        assert store.traces() == ["t-1", "t-2"]
        assert not store.has("t-0")
        assert store.events("t-0") == []

    def test_stats_summarize_occupancy(self):
        store = _store(max_events=2)
        store.span_begin("t-1", "job")
        for _ in range(4):
            store.span_begin("t-2", "cell.lease")
        assert store.stats() == {"traces": 2, "events": 3, "dropped": 2}


class TestExport:
    def test_jsonl_ends_with_meta_trailer(self):
        store = _store()
        sid = store.span_begin("t-1", "job", job="job-1")
        store.span_end("t-1", sid, reason="done")
        lines = [json.loads(x) for x in store.to_jsonl("t-1").splitlines()]
        assert lines[-1] == {
            "meta": "job-trace", "trace": "t-1", "events": 2, "dropped": 0,
        }
        assert lines[0]["kind"] == "span.begin"

    def test_jsonl_loads_through_report_loader(self, tmp_path):
        from repro.obs.report import load_trace

        store = _store()
        sid = store.span_begin("t-1", "job", job="job-1")
        store.span_end("t-1", sid, reason="done")
        path = tmp_path / "trace.jsonl"
        path.write_text(store.to_jsonl("t-1"))
        load = load_trace(path)
        # The meta trailer is the single skipped line.
        assert load.skipped == 1
        assert [e.kind for e in load.events] == ["span.begin", "span.end"]

    def test_unknown_trace_exports_empty_trailer(self):
        store = _store()
        lines = [json.loads(x) for x in store.to_jsonl("nope").splitlines()]
        assert lines == [
            {"meta": "job-trace", "trace": "nope", "events": 0, "dropped": 0},
        ]
