"""Profiling hooks: wall-time attribution and heartbeats."""

import logging

import pytest

from repro.common.events import Scheduler
from repro.obs.profiler import Heartbeat, SimProfiler, component_of


class FakeBus:
    """Module-level stand-in so qualnames look like real components."""

    def pump(self):
        """A bound-method callback."""

    def request(self):
        """Return a closure scheduled by this site."""
        return lambda: None


def tick():
    """A plain-function callback."""


class TestComponentOf:
    def test_bound_method(self):
        assert component_of(FakeBus().pump) == "FakeBus.pump"

    def test_closure_attributes_to_creating_site(self):
        assert component_of(FakeBus().request()) == "FakeBus.request"

    def test_plain_function(self):
        assert component_of(tick) == "tick"


class TestSimProfiler:
    def test_record_and_rows(self):
        prof = SimProfiler()
        prof.record("Bus.pump", 0.5)
        prof.record("Bus.pump", 0.25)
        prof.record("Core.step", 2.0)
        assert prof.total_events == 3
        assert prof.total_seconds == pytest.approx(2.75)
        rows = prof.rows()
        assert rows[0][0] == "Core.step"  # most expensive first
        assert rows[1] == ("Bus.pump", 2, 0.75)

    def test_report_renders(self):
        prof = SimProfiler()
        prof.record("Bus.pump", 0.5)
        text = prof.report()
        assert "Bus.pump" in text and "TOTAL" in text

    def test_scheduler_integration(self):
        sched = Scheduler()
        prof = SimProfiler()
        sched.enable_profiling(prof)
        for t in range(5):
            sched.at(t, tick)
        sched.run()
        assert prof.total_events == 5
        assert prof.counts == {"tick": 5}

    def test_default_step_is_unwrapped(self):
        # Profiling swaps step per instance; untouched schedulers keep
        # the plain class method (the zero-overhead default).
        sched = Scheduler()
        assert "step" not in vars(sched)
        sched.enable_profiling(SimProfiler())
        assert "step" in vars(sched)


class TestHeartbeat:
    def test_requires_positive_interval(self):
        with pytest.raises(ValueError):
            Heartbeat(Scheduler(), 0)

    def test_beats_and_stops(self, caplog):
        sched = Scheduler()
        done = []
        sched.at(95, lambda: done.append(True))
        hb = Heartbeat(
            sched, 10,
            progress=lambda: {"committed": 7},
            stop=lambda: bool(done),
        )
        with caplog.at_level(logging.INFO, logger="repro.heartbeat"):
            sched.run()
        # Ticks at 10..100; the tick at 100 sees stop() True and does
        # not reschedule, so the queue drains.
        assert hb.beats == 10
        assert sched.pending() == 0
        assert "committed=7" in caplog.text
        assert "events/s=" in caplog.text

    def test_cadence_is_one_beat_per_interval(self, caplog):
        # Exactly floor(run_length / interval) beats, at cycles
        # interval, 2*interval, ... — no beat at cycle 0 and no beat
        # after the stop condition turns true.
        sched = Scheduler()
        done = []
        sched.at(99, lambda: done.append(True))
        hb = Heartbeat(sched, 25, stop=lambda: bool(done))
        with caplog.at_level(logging.INFO, logger="repro.heartbeat"):
            sched.run()
        assert hb.beats == 4  # cycles 25, 50, 75, 100
        cycles = [
            int(rec.getMessage().split("cycle=")[1].split()[0])
            for rec in caplog.records
            if rec.name == "repro.heartbeat"
        ]
        assert cycles == [25, 50, 75, 100]
        assert sched.pending() == 0

    def test_system_run_heartbeat(self, caplog):
        from repro.common.config import scaled_config
        from repro.system.system import System
        from repro.workloads.registry import get_benchmark

        system = System(scaled_config(), get_benchmark("locks", scale=0.05))
        with caplog.at_level(logging.INFO, logger="repro.heartbeat"):
            system.run(heartbeat=500)
        assert "ipc=" in caplog.text
        assert "finished=" in caplog.text
