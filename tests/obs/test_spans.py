"""Spans: begin/end pairing, ring-buffer truncation, crash safety,
Chrome flow export round-trip."""

import json

import pytest

from repro.obs.spans import collect_spans, spans_to_jsonl
from repro.obs.tracer import NULL_TRACER, Tracer


class TestSpanAPI:
    def test_begin_end_pairs_into_one_span(self):
        tracer = Tracer(clock=lambda: 0)
        sid = tracer.span_begin("txn", node=1, base=0x100, ts=5, txn="Read")
        tracer.span_end(sid, node=1, base=0x100, ts=9, shared=True)
        stream = collect_spans(tracer.events)
        assert stream.truncated == 0 and stream.open == 0
        (span,) = stream.spans
        assert span.name == "txn" and span.begin == 5 and span.end == 9
        assert span.dur == 4
        assert span.fields["txn"] == "Read" and span.fields["shared"] is True

    def test_parent_links_children(self):
        tracer = Tracer(clock=lambda: 0)
        parent = tracer.span_begin("miss", ts=0)
        child = tracer.span_begin("txn", parent=parent, ts=1)
        tracer.span_end(child, ts=2)
        tracer.span_end(parent, ts=3)
        stream = collect_spans(tracer.events)
        assert [s.span for s in stream.children(parent)] == [child]

    def test_context_manager_closes_on_exception(self):
        tracer = Tracer(clock=lambda: 7)
        with pytest.raises(RuntimeError):
            with tracer.span("validate", node=0):
                raise RuntimeError("boom")
        assert collect_spans(tracer.events).open == 0

    def test_null_tracer_span_api_is_inert(self):
        sid = NULL_TRACER.span_begin("txn", node=1)
        assert sid is None
        NULL_TRACER.span_end(sid)  # must not raise
        with NULL_TRACER.span("miss"):
            pass

    def test_span_end_none_is_noop(self):
        tracer = Tracer(clock=lambda: 0)
        tracer.span_end(None)
        assert len(tracer.events) == 0


class TestRingTruncation:
    def test_evicted_begin_counts_as_truncated(self):
        # A ring small enough to evict span.begin events must degrade
        # with an explicit marker, never a crash or a silent mismatch.
        tracer = Tracer(clock=lambda: 0, ring=4)
        sids = [tracer.span_begin("txn", ts=i) for i in range(6)]
        for i, sid in enumerate(sids):
            tracer.span_end(sid, ts=10 + i)
        stream = collect_spans(tracer.events)
        assert stream.truncated > 0
        assert tracer.spans_truncated == stream.truncated

    def test_truncation_marker_in_chrome_metadata(self):
        tracer = Tracer(clock=lambda: 0, ring=4)
        for i in range(6):
            sid = tracer.span_begin("txn", ts=i)
            if i == 0:
                first = sid
        tracer.span_end(first, ts=99)
        doc = tracer.to_chrome()
        assert doc["metadata"]["spans_truncated"] >= 1

    def test_truncation_marker_in_spans_jsonl(self):
        tracer = Tracer(clock=lambda: 0, ring=4)
        for i in range(6):
            sid = tracer.span_begin("txn", ts=i)
        tracer.span_end(sid, ts=99)
        for _ in range(3):  # push the remaining begins out of the ring
            tracer.emit("noise", ts=100)
        lines = [json.loads(l) for l in spans_to_jsonl(tracer.events).splitlines()]
        meta = lines[-1]
        assert meta["meta"] == "spans" and meta["truncated"] >= 1

    def test_untruncated_ring_keeps_pairing(self):
        tracer = Tracer(clock=lambda: 0, ring=100)
        for i in range(10):
            sid = tracer.span_begin("txn", ts=i)
            tracer.span_end(sid, ts=i + 1)
        stream = collect_spans(tracer.events)
        assert stream.truncated == 0 and len(stream.spans) == 10


class TestCrashSafety:
    def test_exception_inside_context_still_writes_trace(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        with pytest.raises(RuntimeError):
            with Tracer(clock=lambda: 0, path=str(path)) as tracer:
                tracer.emit("bus.grant", node=0, base=0x100)
                raise RuntimeError("simulated crash")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["bus.grant"]

    def test_close_is_idempotent_and_saves(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(clock=lambda: 0, path=str(path))
        tracer.emit("mem.miss", node=1)
        tracer.close()
        tracer.close()
        assert "mem.miss" in path.read_text()

    def test_attach_sink_rejects_unknown_format(self, tmp_path):
        tracer = Tracer(clock=lambda: 0)
        with pytest.raises(Exception):
            tracer.attach_sink(str(tmp_path / "t"), "xml")

    def test_atexit_flush_swallows_write_errors(self, tmp_path):
        tracer = Tracer(clock=lambda: 0, path=str(tmp_path / "d" / "t.jsonl"))
        tracer.emit("x")
        tracer._atexit_flush()  # missing directory: must not raise


class TestChromeRoundTrip:
    def _traced_tracer(self):
        tracer = Tracer(clock=lambda: 0)
        parent = tracer.span_begin("miss", node=0, base=0x100, ts=1)
        child = tracer.span_begin("txn", node=0, base=0x100, ts=2, parent=parent)
        tracer.emit("bus.grant", node=0, base=0x100, ts=3, txn="Read")
        tracer.span_end(child, ts=4)
        tracer.span_end(parent, ts=5, cause="cold")
        return tracer

    def test_flow_records_emitted(self):
        doc = self._traced_tracer().to_chrome()
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("b") == 2 and phases.count("e") == 2
        assert "s" in phases and "f" in phases  # parent-link flow pair

    def test_round_trip_through_report(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.report import load_trace

        path = tmp_path / "t.json"
        self._traced_tracer().save(str(path), format="chrome")
        load = load_trace(path)
        assert load.skipped == 0, "every chrome record must load back"
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        # Async span records come back under their span names.
        assert "by kind:" in out and "txn" in out and "miss" in out


class TestFoldRemap:
    """fold_spans / remap_spans — the pool-boundary span payload."""

    def _events(self):
        from repro.obs.spans import fold_spans

        tracer = Tracer(clock=lambda: 0)
        parent = tracer.span_begin("miss", node=1, base=0x100, ts=10)
        child = tracer.span_begin("txn", parent=parent, ts=11, txn="Read")
        tracer.span_end(child, ts=12)
        tracer.span_end(parent, ts=14)
        open_span = tracer.span_begin("stall", ts=15)  # noqa: F841 - open
        return fold_spans(tracer.events)

    def test_fold_produces_plain_dicts(self):
        doc = self._events()
        assert doc["count"] == 3 and doc["truncated"] == 0
        assert all(isinstance(s, dict) for s in doc["spans"])
        by_name = {s["name"]: s for s in doc["spans"]}
        assert by_name["txn"]["parent"] is not None
        assert by_name["txn"]["begin"] == 11 and by_name["txn"]["end"] == 12
        assert by_name["stall"]["end"] is None  # still open: kept, no end
        assert by_name["miss"]["node"] == 1

    def test_fold_limit_counts_overflow(self):
        from repro.obs.spans import fold_spans

        tracer = Tracer(clock=lambda: 0)
        for i in range(5):
            tracer.span_end(tracer.span_begin("txn", ts=i), ts=i)
        doc = fold_spans(tracer.events, limit=3)
        assert doc["count"] == 5 and doc["truncated"] == 2
        assert len(doc["spans"]) == 3

    def test_remap_shifts_ids_and_parents_roots(self):
        from repro.obs.spans import remap_spans

        doc = self._events()
        spans = remap_spans(doc["spans"], base=1000, parent=7, trace="t-1")
        by_name = {s["name"]: s for s in spans}
        # Roots re-parent under the service-side span.
        assert by_name["miss"]["parent"] == 7
        assert by_name["stall"]["parent"] == 7
        # Children keep their (shifted) worker-side parent.
        assert by_name["txn"]["parent"] == by_name["miss"]["span"]
        assert all(s["span"] > 1000 for s in spans)
        assert all(s["trace"] == "t-1" for s in spans)
