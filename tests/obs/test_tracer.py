"""Tracer: event capture, filtering, ring buffer, serialization."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    TraceEvent,
    TraceFilter,
    Tracer,
)


class TestEmit:
    def test_records_clock_and_coords(self):
        clock = {"now": 0}
        tracer = Tracer(clock=lambda: clock["now"])
        clock["now"] = 42
        tracer.emit("bus.grant", node=2, base=0x1440, txn="read")
        [event] = tracer.events
        assert event.ts == 42
        assert event.kind == "bus.grant"
        assert event.node == 2
        assert event.base == 0x1440
        assert event.fields == {"txn": "read"}

    def test_explicit_ts_overrides_clock(self):
        tracer = Tracer(clock=lambda: 100)
        tracer.emit("mem.miss", node=0, base=0, ts=7, dur=93)
        assert tracer.events[0].ts == 7

    def test_bind_clock_follows_scheduler(self):
        from repro.common.events import Scheduler

        sched = Scheduler()
        tracer = Tracer()
        tracer.bind_clock(sched)
        sched.at(13, lambda: tracer.emit("bus.grant"))
        sched.run()
        assert tracer.events[0].ts == 13

    def test_len_and_iter(self):
        tracer = Tracer()
        tracer.emit("bus.grant")
        tracer.emit("bus.cancel")
        assert len(tracer) == 2
        assert [e.kind for e in tracer] == ["bus.grant", "bus.cancel"]


class TestRingBuffer:
    def test_keeps_most_recent(self):
        tracer = Tracer(clock=lambda: 0, ring=3)
        for i in range(10):
            tracer.emit("bus.grant", ts=i)
        assert len(tracer) == 3
        assert [e.ts for e in tracer.events] == [7, 8, 9]


class TestTraceFilter:
    def test_exact_kind(self):
        filt = TraceFilter(kinds=["bus.grant"])
        assert filt.matches("bus.grant", None, None)
        assert not filt.matches("bus.cancel", None, None)

    def test_prefix_kind_matches_family(self):
        filt = TraceFilter(kinds=["validate"])
        assert filt.matches("validate.broadcast", None, None)
        assert filt.matches("validate.suppressed", None, None)
        assert not filt.matches("bus.grant", None, None)

    def test_prefix_does_not_match_substring(self):
        # "bus" must not match a hypothetical "busy.thing" kind.
        filt = TraceFilter(kinds=["bus"])
        assert not filt.matches("busy.thing", None, None)

    def test_node_and_base_clauses(self):
        filt = TraceFilter(nodes=[0, 1], bases=[0x40])
        assert filt.matches("bus.grant", 0, 0x40)
        assert not filt.matches("bus.grant", 2, 0x40)
        assert not filt.matches("bus.grant", 0, 0x80)
        # Events without a node/base pass those clauses.
        assert filt.matches("bus.grant", None, None)

    def test_dropped_counter(self):
        tracer = Tracer(filter=TraceFilter(kinds=["lvp"]))
        tracer.emit("bus.grant")
        tracer.emit("lvp.predict")
        assert len(tracer) == 1
        assert tracer.dropped == 1

    def test_parse_full_grammar(self):
        filt = TraceFilter.parse("kind=validate|bus.grant,node=0-2,addr=0x1440")
        assert filt.matches("validate.broadcast", 1, 0x1440)
        assert filt.matches("bus.grant", 2, 0x1440)
        assert not filt.matches("bus.grant", 3, 0x1440)
        assert not filt.matches("bus.grant", 1, 0x1480)
        assert not filt.matches("sle.attempt", 1, 0x1440)

    def test_parse_bad_clause_raises(self):
        with pytest.raises(ConfigError):
            TraceFilter.parse("kindvalidate")
        with pytest.raises(ConfigError):
            TraceFilter.parse("frob=1")

    def test_parse_empty_expr_matches_everything(self):
        # No clauses → no constraints; stray separators are ignored.
        for expr in ("", "   ", ",", " , ,"):
            filt = TraceFilter.parse(expr)
            assert filt.kinds is None and filt.nodes is None
            assert filt.matches("bus.grant", 7, 0xFFFF)

    def test_parse_tolerates_whitespace(self):
        filt = TraceFilter.parse(" kind = validate | bus.grant , node = 0 - 2 ")
        assert filt.matches("validate.broadcast", 0, None)
        assert filt.matches("bus.grant", 2, None)
        assert not filt.matches("bus.grant", 3, None)

    def test_parse_unknown_key_names_the_key(self):
        with pytest.raises(ConfigError, match="'proc'"):
            TraceFilter.parse("proc=0")


class TestNullTracer:
    def test_not_a_tracer_subclass(self):
        # The zero-overhead guarantee: the disabled path is a dedicated
        # no-op object sharing no code with the real Tracer.
        assert not isinstance(NULL_TRACER, Tracer)
        assert Tracer not in type(NULL_TRACER).__mro__

    def test_emit_accepts_any_event_and_keeps_nothing(self):
        assert NULL_TRACER.emit("bus.grant", node=1, base=2, ts=3, x=4) is None
        assert not hasattr(NULL_TRACER, "_events")

    def test_system_defaults_to_null_tracer(self):
        from repro.common.config import scaled_config
        from repro.system.system import System
        from repro.workloads.registry import get_benchmark

        system = System(scaled_config(), get_benchmark("locks", scale=0.02))
        assert system.tracer is NULL_TRACER


class TestSerialization:
    def make_tracer(self):
        tracer = Tracer(clock=lambda: 0)
        tracer.emit("cache.transition", node=1, base=0x80, ts=5, frm="I", to="S")
        tracer.emit("mem.miss", node=0, base=0x40, ts=2, dur=100, store=False)
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self.make_tracer()
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "ts": 5, "kind": "cache.transition", "node": 1, "base": 0x80,
            "frm": "I", "to": "S",
        }

    def test_chrome_shape(self):
        doc = self.make_tracer().to_chrome()
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        miss = by_name["mem.miss"]
        assert miss["ph"] == "X" and miss["dur"] == 100
        assert miss["tid"] == 0 and miss["pid"] == 0
        inst = by_name["cache.transition"]
        assert inst["ph"] == "i" and inst["s"] == "t"
        assert inst["args"]["base"] == "0x80"

    def test_chrome_sorted_by_ts(self):
        doc = self.make_tracer().to_chrome()
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert ts == sorted(ts)

    def test_save_jsonl_and_chrome(self, tmp_path):
        tracer = self.make_tracer()
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        tracer.save(jsonl, format="jsonl")
        tracer.save(chrome, format="chrome")
        assert len(jsonl.read_text().strip().splitlines()) == 2
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_save_unknown_format(self, tmp_path):
        with pytest.raises(ConfigError):
            self.make_tracer().save(tmp_path / "t", format="xml")


class TestTaxonomy:
    def test_kinds_are_dotted_families(self):
        for kind in EVENT_KINDS:
            family, _, rest = kind.partition(".")
            assert family and rest, kind

    def test_event_to_dict_omits_empty_coords(self):
        event = TraceEvent(ts=1, kind="bus.grant")
        assert event.to_dict() == {"ts": 1, "kind": "bus.grant"}


class TestEndToEnd:
    def test_traced_run_covers_protocol_families(self):
        from repro.common.config import scaled_config
        from repro.system.system import System
        from repro.system.techniques import configure_technique
        from repro.workloads.registry import get_benchmark

        tracer = Tracer()
        config = configure_technique(scaled_config(), "emesti+lvp+sle")
        system = System(
            config, get_benchmark("locks", scale=0.1), seed=1, tracer=tracer
        )
        system.run()
        kinds = {e.kind for e in tracer.events}
        assert kinds <= EVENT_KINDS
        for family in ("bus.", "cache.", "validate.", "mem."):
            assert any(k.startswith(family) for k in kinds), family
        # Timestamps never exceed the final simulated cycle.
        assert max(e.ts for e in tracer.events) <= system.scheduler.now
