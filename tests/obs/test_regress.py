"""Cross-run regression tracking: classification, gate, CLI wiring."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.regress import (
    DEFAULT_REL_THRESHOLD,
    Comparison,
    Delta,
    compare_reports,
    load_report,
    render_comparison,
)


def bench_report(**overrides) -> dict:
    """A minimal but complete bench-shaped report."""
    report = {
        "schema": 2,
        "quick": True,
        "python": "3.11.0",
        "platform": "linux",
        "cpu_count": 2,
        "scheduler": {"events_per_sec": 1_000_000},
        "stats": {"adds_per_sec": 2_000_000, "hist_records_per_sec": 3_000_000},
        "matrix": {
            "scale": 0.05,
            "fingerprint": "abcd1234",
            "serial_seconds": 2.0,
            "workers": None,
            "parallel_seconds": None,
            "speedup": None,
            "parallel_matches_serial": None,
            "cells": [
                {"benchmark": "radiosity", "technique": "base", "seed": 1,
                 "wall_seconds": 1.0, "cycles": 1000, "committed": 500},
                {"benchmark": "radiosity", "technique": "emesti", "seed": 1,
                 "wall_seconds": 1.0, "cycles": 900, "committed": 500},
            ],
        },
        "determinism": {"ok": True, "mismatched_fields": []},
    }
    report.update(overrides)
    return report


class TestCompareBench:
    def test_identical_reports_pass(self):
        base = bench_report()
        cmp_ = compare_reports(base, copy.deepcopy(base))
        assert cmp_.ok
        assert cmp_.regressions == []
        assert all(d.status in ("ok",) for d in cmp_.deltas)

    def test_rate_drop_past_threshold_is_a_regression(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 400_000  # -60%
        cmp_ = compare_reports(base, cur)
        (bad,) = cmp_.regressions
        assert bad.metric == "scheduler.events_per_sec"
        assert bad.status == "regression"
        assert bad.rel == pytest.approx(-0.6)

    def test_rate_drop_within_threshold_passes(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 700_000  # -30% < 50%
        assert compare_reports(base, cur).ok

    def test_wall_time_rise_is_a_regression(self):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["serial_seconds"] = 4.0  # +100%
        (bad,) = compare_reports(base, cur).regressions
        assert bad.metric == "matrix.serial_seconds"

    def test_rate_rise_is_an_improvement_not_a_failure(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 5_000_000
        cmp_ = compare_reports(base, cur)
        assert cmp_.ok
        (delta,) = [d for d in cmp_.deltas if d.status == "improved"]
        assert delta.metric == "scheduler.events_per_sec"

    def test_cycles_compare_exactly(self):
        # Even a tiny cycles drift fails the gate: the simulator is
        # deterministic, so any change is a behavior change.
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["cells"][0]["cycles"] += 1
        (bad,) = compare_reports(base, cur).regressions
        assert bad.status == "changed"
        assert "cell[radiosity|base|1].cycles" == bad.metric

    def test_threshold_is_configurable(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 700_000  # -30%
        assert not compare_reports(base, cur, rel_threshold=0.2).ok
        assert compare_reports(base, cur, rel_threshold=0.4).ok

    def test_per_metric_threshold_override(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 700_000
        cmp_ = compare_reports(
            base, cur, thresholds={"scheduler.events_per_sec": 0.1}
        )
        assert [d.metric for d in cmp_.regressions] == [
            "scheduler.events_per_sec"
        ]

    def test_fingerprint_mismatch_skips_cells_not_microbenches(self):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["fingerprint"] = "ffff0000"
        cur["matrix"]["cells"][0]["cycles"] += 999  # would fail if compared
        cur["scheduler"]["events_per_sec"] = 100  # must still be compared
        cmp_ = compare_reports(base, cur)
        skipped = [d for d in cmp_.deltas if d.status == "skipped"]
        assert all(d.metric.startswith("cell[") for d in skipped)
        assert len(skipped) == 6  # 2 cells x (wall, cycles, committed)
        assert [d.metric for d in cmp_.regressions] == [
            "scheduler.events_per_sec"
        ]

    def test_skipped_cells_log_named_event_with_reason(self, caplog):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["fingerprint"] = "ffff0000"
        with caplog.at_level("WARNING", logger="repro.regress"):
            cmp_ = compare_reports(base, cur)
        skip_lines = [
            r.getMessage() for r in caplog.records
            if "compare.cell_skipped" in r.getMessage()
        ]
        assert len(skip_lines) == len(cmp_.skipped) == 6
        assert all("reason=fingerprint_mismatch" in line for line in skip_lines)
        assert all(
            "cell_skipped{reason=fingerprint_mismatch}" in d.note
            for d in cmp_.skipped
        )

    def test_scale_mismatch_reason_is_named(self, caplog):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["scale"] = 0.1
        with caplog.at_level("WARNING", logger="repro.regress"):
            cmp_ = compare_reports(base, cur)
        assert cmp_.skipped
        assert all(
            "reason=scale_mismatch" in r.getMessage()
            for r in caplog.records
            if "compare.cell_skipped" in r.getMessage()
        )

    def test_missing_cell_in_current_fails(self):
        base = bench_report()
        cur = bench_report()
        del cur["matrix"]["cells"][1]
        statuses = {d.metric: d.status for d in compare_reports(base, cur).deltas}
        assert statuses["cell[radiosity|emesti|1].cycles"] == "missing"
        assert not compare_reports(base, cur).ok

    def test_new_cell_in_current_is_skipped_not_failed(self):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["cells"].append(
            {"benchmark": "tpc-b", "technique": "base", "seed": 1,
             "wall_seconds": 1.0, "cycles": 1, "committed": 1}
        )
        assert compare_reports(base, cur).ok

    def test_determinism_failure_is_a_regression(self):
        base = bench_report()
        cur = bench_report()
        cur["determinism"] = {"ok": False, "mismatched_fields": ["cycles"]}
        (bad,) = compare_reports(base, cur).regressions
        assert bad.metric == "determinism.ok"


class TestCompareMetrics:
    def series(self, value):
        return {
            "schema": 1,
            "series": [
                {"name": "repro_ts_stores_total", "kind": "counter",
                 "labels": {"node": "0"}, "value": value},
            ],
        }

    def test_identical_series_pass(self):
        assert compare_reports(self.series(62), self.series(62)).ok

    def test_drift_past_threshold_fails_either_direction(self):
        assert not compare_reports(self.series(100), self.series(10)).ok
        assert not compare_reports(self.series(10), self.series(100)).ok
        assert compare_reports(self.series(100), self.series(120)).ok

    def test_zero_threshold_means_exact(self):
        cmp_ = compare_reports(
            self.series(62), self.series(63), rel_threshold=0
        )
        (bad,) = cmp_.regressions
        assert bad.status == "changed"


class TestRendering:
    def test_render_flags_regressions_first(self):
        base = bench_report()
        cur = bench_report()
        cur["scheduler"]["events_per_sec"] = 100
        cur["stats"]["adds_per_sec"] = 10_000_000  # improvement
        text = render_comparison(compare_reports(base, cur))
        assert "REGRESSION" in text
        lines = text.splitlines()
        assert "scheduler.events_per_sec" in lines[1]  # failures lead

    def test_render_clean_comparison_is_short(self):
        base = bench_report()
        text = render_comparison(compare_reports(base, copy.deepcopy(base)))
        assert "0 failing" in text
        assert "REGRESSION" not in text

    def test_render_reports_skipped_count(self):
        base = bench_report()
        cur = bench_report()
        cur["matrix"]["fingerprint"] = "ffff0000"
        text = render_comparison(compare_reports(base, cur))
        assert "6 skipped" in text.splitlines()[0]

    def test_to_json_shape(self):
        cmp_ = Comparison(deltas=[
            Delta("m", 1.0, 2.0, 1.0, "changed", "note"),
            Delta("s", None, 2.0, None, "skipped", "absent in baseline"),
        ])
        doc = cmp_.to_json()
        assert doc["ok"] is False
        assert doc["regressions"] == 1
        assert doc["skipped"] == 1
        assert doc["deltas"][0]["metric"] == "m"
        json.dumps(doc)

    def test_load_report(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(bench_report()))
        assert load_report(path)["schema"] == 2


class TestCliGate:
    """The ``repro-sim bench --compare`` exit-code contract."""

    def run_cli(self, tmp_path, monkeypatch, current, baseline,
                extra_args=()):
        from repro import cli
        from repro.experiments import bench

        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        monkeypatch.setattr(
            bench, "run", lambda **kwargs: copy.deepcopy(current)
        )
        return cli.main([
            "-q", "bench",
            "--compare", str(baseline_path),
            "--output", str(tmp_path / "BENCH_current.json"),
            *extra_args,
        ])

    def test_unchanged_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        rc = self.run_cli(tmp_path, monkeypatch, bench_report(), bench_report())
        assert rc == 0
        assert "compare vs" in capsys.readouterr().out

    def test_perturbed_metric_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        current = bench_report()
        current["matrix"]["cells"][0]["cycles"] += 50
        rc = self.run_cli(tmp_path, monkeypatch, current, bench_report())
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "perf regression" in captured.err

    def test_threshold_flag_is_honored(self, tmp_path, monkeypatch, capsys):
        current = bench_report()
        current["scheduler"]["events_per_sec"] = 700_000  # -30%
        assert self.run_cli(
            tmp_path, monkeypatch, current, bench_report()
        ) == 0  # default 0.5 tolerates it
        assert self.run_cli(
            tmp_path, monkeypatch, current, bench_report(),
            extra_args=("--threshold", "0.2"),
        ) == 1

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path, capsys):
        from repro import cli

        rc = cli.main([
            "-q", "bench", "--compare", str(tmp_path / "nope.json"),
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_default_threshold_exported(self):
        assert 0 < DEFAULT_REL_THRESHOLD < 1
