"""Trace reading and summarization (``repro-sim report``)."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.report import read_trace, render_report, summarize_trace
from repro.obs.tracer import Tracer


def make_tracer():
    tracer = Tracer(clock=lambda: 0)
    tracer.emit("bus.grant", node=0, base=0x40, ts=3, txn="read")
    tracer.emit("bus.grant", node=1, base=0x40, ts=9, txn="upgrade")
    tracer.emit("mem.miss", node=0, base=0x80, ts=1, dur=50, store=False)
    return tracer


class TestReadTrace:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "t.jsonl"
        tracer.save(path, format="jsonl")
        events = read_trace(path)
        assert [e.kind for e in events] == [e.kind for e in tracer.events]
        assert events[0].base == 0x40
        assert events[2].fields["dur"] == 50

    def test_chrome_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "t.json"
        tracer.save(path, format="chrome")
        events = read_trace(path)
        # Chrome output is ts-sorted; compare as sets of coordinates.
        assert {(e.ts, e.kind, e.node, e.base) for e in events} == {
            (e.ts, e.kind, e.node, e.base) for e in tracer.events
        }
        miss = next(e for e in events if e.kind == "mem.miss")
        assert miss.fields["dur"] == 50
        assert miss.base == 0x80  # hex string parsed back to int

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace(path) == []

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ConfigError):
            read_trace(path)


class TestSummarize:
    def test_counts_and_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_tracer().save(path, format="jsonl")
        summary = summarize_trace(read_trace(path))
        assert summary["events"] == 3
        assert summary["first_ts"] == 1 and summary["last_ts"] == 9
        assert summary["kinds"]["bus.grant"] == 2
        assert summary["nodes"] == {"P0": 2, "P1": 1}
        assert summary["hot_lines"]["0x40"] == 2

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["first_ts"] == 0 and summary["last_ts"] == 0

    def test_render(self):
        text = render_report(summarize_trace(make_tracer().events))
        assert "bus.grant" in text
        assert "P1" in text
        assert "0x40" in text
