"""Trace reading and summarization (``repro-sim report``)."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.obs.report import load_trace, read_trace, render_report, summarize_trace
from repro.obs.tracer import Tracer


def make_tracer():
    tracer = Tracer(clock=lambda: 0)
    tracer.emit("bus.grant", node=0, base=0x40, ts=3, txn="read")
    tracer.emit("bus.grant", node=1, base=0x40, ts=9, txn="upgrade")
    tracer.emit("mem.miss", node=0, base=0x80, ts=1, dur=50, store=False)
    return tracer


class TestReadTrace:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "t.jsonl"
        tracer.save(path, format="jsonl")
        events = read_trace(path)
        assert [e.kind for e in events] == [e.kind for e in tracer.events]
        assert events[0].base == 0x40
        assert events[2].fields["dur"] == 50

    def test_chrome_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "t.json"
        tracer.save(path, format="chrome")
        events = read_trace(path)
        # Chrome output is ts-sorted; compare as sets of coordinates.
        assert {(e.ts, e.kind, e.node, e.base) for e in events} == {
            (e.ts, e.kind, e.node, e.base) for e in tracer.events
        }
        miss = next(e for e in events if e.kind == "mem.miss")
        assert miss.fields["dur"] == 50
        assert miss.base == 0x80  # hex string parsed back to int

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace(path) == []

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ConfigError):
            read_trace(path)


class TestTolerantLoading:
    def test_empty_file_is_an_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        load = load_trace(path)
        assert load.events == [] and load.skipped == 0
        assert load.format == "empty"

    def test_truncated_final_line_costs_one_event(self, tmp_path):
        # The classic interrupted-run artifact: the writer died mid-line.
        path = tmp_path / "t.jsonl"
        good = make_tracer().to_jsonl()
        path.write_text(good + '\n{"ts": 12, "ki')
        load = load_trace(path)
        assert load.format == "jsonl"
        assert len(load.events) == 3
        assert load.skipped == 1

    def test_malformed_middle_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join([
            '{"ts": 1, "kind": "bus.grant", "node": 0}',
            "not json",
            '{"no_ts_or_kind": true}',
            '[1, 2]',
            '{"ts": 2, "kind": "bus.cancel"}',
        ]))
        load = load_trace(path)
        assert [e.kind for e in load.events] == ["bus.grant", "bus.cancel"]
        assert load.skipped == 3

    def test_bare_array_chrome_trace(self, tmp_path):
        # Chrome accepts a bare top-level array of events; so do we.
        doc = make_tracer().to_chrome()
        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc["traceEvents"]))
        load = load_trace(path)
        assert load.format == "chrome"
        assert len(load.events) == 3 and load.skipped == 0

    def test_damaged_chrome_records_are_skipped(self, tmp_path):
        doc = make_tracer().to_chrome()
        doc["traceEvents"].append({"ph": "i"})  # no ts/name
        doc["traceEvents"].append("not a record")
        path = tmp_path / "t.json"
        path.write_text(json.dumps(doc))
        load = load_trace(path)
        assert len(load.events) == 3
        assert load.skipped == 2

    def test_read_trace_wraps_load_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_tracer().save(path, format="jsonl")
        assert [e.kind for e in read_trace(path)] == [
            e.kind for e in load_trace(path).events
        ]


class TestSummarize:
    def test_counts_and_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_tracer().save(path, format="jsonl")
        summary = summarize_trace(read_trace(path))
        assert summary["events"] == 3
        assert summary["first_ts"] == 1 and summary["last_ts"] == 9
        assert summary["kinds"]["bus.grant"] == 2
        assert summary["nodes"] == {"P0": 2, "P1": 1}
        assert summary["hot_lines"]["0x40"] == 2

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary["events"] == 0
        assert summary["first_ts"] == 0 and summary["last_ts"] == 0

    def test_render(self):
        text = render_report(summarize_trace(make_tracer().events))
        assert "bus.grant" in text
        assert "P1" in text
        assert "0x40" in text
