"""Observability layer tests."""
