"""Test harness: drive the memory system directly, without cores.

``MemHarness`` wires scheduler + memory + bus + one controller/node per
processor, and offers synchronous-looking load/store helpers that run
the event loop until the access completes.  ``FakeCore`` stands in for
the real core, recording LVP callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import MachineConfig, scaled_config
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.coherence.bus import SnoopBus
from repro.coherence.controller import CoherenceController
from repro.memory.hierarchy import NodeMemory
from repro.memory.mainmem import MainMemory


@dataclass
class FakeOp:
    """Stands in for a WinOp as an LVP consumer."""

    seq: int
    value: int | None = None
    verified: bool = False
    squashed: bool = False


@dataclass
class FakeCore:
    """Records the callbacks NodeMemory makes into a core."""

    completions: list[tuple[FakeOp, int]] = field(default_factory=list)
    verified: list[FakeOp] = field(default_factory=list)
    mispredicted: list[FakeOp] = field(default_factory=list)

    def load_completed(self, op: FakeOp, value: int) -> None:
        op.value = value
        self.completions.append((op, value))

    def lvp_verified(self, op: FakeOp) -> None:
        op.verified = True
        self.verified.append(op)

    def lvp_mispredict(self, op: FakeOp) -> None:
        op.squashed = True
        self.mispredicted.append(op)


class ScriptWorkload:
    """Adapter: wrap per-thread generator functions as a workload.

    ``fns`` is one generator function per processor, each called as
    ``fn(tid, config, rng)`` and returning a program generator.
    """

    name = "script"
    cracking_ratio = 1.0

    def __init__(self, *fns):
        self._fns = fns

    def build_programs(self, config, rng):
        from repro.cpu.program import ThreadProgram

        return [
            ThreadProgram(fn(tid, config, rng.split(tid)), name=f"script[{tid}]")
            for tid, fn in enumerate(self._fns)
        ]


class MemHarness:
    """An N-node memory system without processor cores."""

    def __init__(self, config: MachineConfig | None = None, n_procs: int | None = None):
        self.config = config or scaled_config()
        if n_procs is not None:
            import dataclasses

            self.config = dataclasses.replace(self.config, n_procs=n_procs)
        self.config.validate()
        self.scheduler = Scheduler()
        self.stats = StatsRegistry()
        self.memory = MainMemory(self.config.line_size)
        self.bus = SnoopBus(
            self.scheduler, self.config.bus, self.memory, self.stats.scoped("bus")
        )
        self.controllers: list[CoherenceController] = []
        self.nodes: list[NodeMemory] = []
        self.cores: list[FakeCore] = []
        self._seq = 0
        for i in range(self.config.n_procs):
            ctrl = CoherenceController(
                i, self.config, self.bus, self.memory, self.stats.scoped(f"ctrl{i}")
            )
            node = NodeMemory(
                i, self.config, self.scheduler, ctrl, self.stats.scoped(f"node{i}")
            )
            core = FakeCore()
            node.core = core
            self.controllers.append(ctrl)
            self.nodes.append(node)
            self.cores.append(core)

    # -- event helpers ---------------------------------------------------

    def drain(self, max_events: int = 100_000) -> None:
        """Run all pending events."""
        count = 0
        while self.scheduler.step():
            count += 1
            assert count < max_events, "harness event storm"

    def new_op(self) -> FakeOp:
        self._seq += 1
        return FakeOp(seq=self._seq)

    # -- synchronous-style accessors --------------------------------------

    def load(self, proc: int, addr: int, reserve: bool = False, spec: bool = True):
        """Load and drain; returns (kind, value, op)."""
        op = self.new_op()
        kind, _lat, value = self.nodes[proc].load(
            addr, op, reserve=reserve, allow_spec=spec
        )
        if kind == "pending":
            self.drain()
            assert op.value is not None, "pending load never completed"
            return "miss", op.value, op
        if kind == "spec":
            op.value = value
            return "spec", value, op
        op.value = value
        return kind, value, op

    def store(self, proc: int, addr: int, value: int, pc: int = 0) -> None:
        """Store and drain to completion."""
        done = []
        latency = self.nodes[proc].store(addr, value, pc, lambda: done.append(True))
        if latency is None:
            self.drain()
            assert done, "pending store never completed"
        # Synchronous path: the write already happened.

    def stcx(self, proc: int, addr: int, value: int, pc: int = 0) -> bool:
        """Store-conditional and drain; returns success."""
        result: list[bool] = []
        latency = self.nodes[proc].stcx(addr, value, pc, result.append)
        if latency is None:
            self.drain()
        assert result, "stcx never resolved"
        return result[0]

    def line_state(self, proc: int, addr: int):
        from repro.common.addressing import line_address

        line = self.controllers[proc].lookup(line_address(addr, self.config.line_size))
        return line.state if line is not None else None
