"""JobQueue state machine: dedupe, leases, retries, cancel, durability.

Everything here runs on a fake monotonic clock — no sleeping, no
simulation; the queue is a pure state machine over its events.
"""

from __future__ import annotations

import json

import pytest

from repro.service.events import EventLog
from repro.service.queue import JobQueue, SpecError, validate_spec


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move time forward."""
        self.now += seconds


SPEC = {
    "benchmarks": ["radiosity"],
    "techniques": ["base", "emesti"],
    "seeds": [1],
    "scale": 0.05,
}


def make_queue(tmp_path, **kwargs) -> tuple[JobQueue, EventLog, FakeClock]:
    """A queue on a fake clock with a fresh event log."""
    clock = FakeClock()
    events = EventLog()
    queue = JobQueue(tmp_path / "queue", events=events, clock=clock, **kwargs)
    return queue, events, clock


def names(events: EventLog) -> list[str]:
    """The emitted event names, in order."""
    return [r["event"] for r in events.records]


class TestSpecValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SpecError, match="unknown benchmark"):
            validate_spec({**SPEC, "benchmarks": ["quake"]})

    def test_unknown_technique_rejected(self):
        with pytest.raises(SpecError, match="unknown technique"):
            validate_spec({**SPEC, "techniques": ["magic"]})

    def test_empty_axes_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            validate_spec({**SPEC, "seeds": []})

    def test_bad_scale_rejected(self):
        with pytest.raises(SpecError, match="scale"):
            validate_spec({**SPEC, "scale": -1})

    def test_non_object_rejected(self):
        with pytest.raises(SpecError, match="object"):
            validate_spec(["radiosity"])

    def test_defaults_applied(self):
        spec = validate_spec({
            "benchmarks": ["tpc-b"], "techniques": ["base"], "seeds": [1],
        })
        assert spec["scale"] == 0.1
        assert spec["priority"] == 0

    def test_repeated_axis_values_are_deduped(self):
        spec = validate_spec({
            **SPEC,
            "benchmarks": ["radiosity", "radiosity"],
            "seeds": [1, 2, 1],
        })
        assert spec["benchmarks"] == ["radiosity"]
        assert spec["seeds"] == [1, 2]

    def test_boolean_seed_rejected(self):
        with pytest.raises(SpecError, match="seeds"):
            validate_spec({**SPEC, "seeds": [True]})


class TestSubmitAndDedupe:
    def test_submit_explodes_matrix_into_cells(self, tmp_path):
        queue, events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        assert len(job["cells"]) == 2
        assert names(events) == [
            "cell.enqueued", "cell.enqueued", "job.enqueued",
        ]

    def test_duplicate_submission_shares_inflight_cells(self, tmp_path):
        queue, events, _clock = make_queue(tmp_path)
        first = queue.submit(SPEC)
        second = queue.submit(SPEC)
        assert first["cells"] == second["cells"]
        # No new cells: both of the second job's cells deduped.
        assert names(events).count("cell.enqueued") == 2
        assert names(events).count("cell.deduped") == 2
        # One completion credits both jobs.
        for fingerprint in first["cells"]:
            queue.lease("w0")
            queue.complete(fingerprint)
        assert queue.jobs[first["id"]]["status"] == "done"
        assert queue.jobs[second["id"]]["status"] == "done"

    def test_finished_cells_leave_the_live_set(self, tmp_path):
        # Re-submitting after completion must enqueue fresh cells
        # (served from the result store, not the queue).
        queue, events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        for fingerprint in job["cells"]:
            queue.lease("w0")
            queue.complete(fingerprint)
        assert queue.pending() == []
        queue.submit(SPEC)
        assert names(events).count("cell.enqueued") == 4
        assert names(events).count("cell.deduped") == 0

    def test_duplicate_seed_submission_yields_unique_cells(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        job = queue.submit({**SPEC, "seeds": [1, 1]})
        assert len(job["cells"]) == len(set(job["cells"])) == 2
        for fingerprint in job["cells"]:
            assert queue.cells[fingerprint]["jobs"] == [job["id"]]

    def test_resubmitted_done_cell_still_credits_the_waiting_job(
        self, tmp_path,
    ):
        # Job A (2 cells) has one cell done; job B re-submits that
        # cell while A still waits on its sibling.  The fresh queued
        # cell must carry A's reference, or A's completion check
        # never fires again and A stays queued forever (its event
        # stream would never terminate).
        queue, _events, _clock = make_queue(tmp_path)
        job_a = queue.submit(SPEC)  # base + emesti cells
        shared = job_a["cells"][0]
        queue.lease("w0")
        queue.complete(shared)
        job_b = queue.submit({**SPEC, "techniques": ["base"]})
        assert job_b["cells"] == [shared]
        assert set(queue.cells[shared]["jobs"]) == {
            job_a["id"], job_b["id"],
        }
        queue.lease("w1")
        queue.complete(shared)
        assert queue.jobs[job_b["id"]]["status"] == "done"
        queue.lease("w2")
        queue.complete(job_a["cells"][1])
        assert queue.jobs[job_a["id"]]["status"] == "done"


class TestLeasing:
    def test_lease_order_is_fifo_within_priority(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        first = queue.submit({**SPEC, "techniques": ["base"]})
        second = queue.submit({**SPEC, "techniques": ["emesti"]})
        assert queue.lease("w0")["fingerprint"] == first["cells"][0]
        assert queue.lease("w1")["fingerprint"] == second["cells"][0]
        assert queue.lease("w2") is None

    def test_higher_priority_leases_first(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        queue.submit({**SPEC, "techniques": ["base"]})
        urgent = queue.submit({**SPEC, "techniques": ["emesti"],
                               "priority": 10})
        assert queue.lease("w0")["fingerprint"] == urgent["cells"][0]

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        queue, _events, clock = make_queue(tmp_path, lease_ttl=10.0)
        queue.submit({**SPEC, "techniques": ["base"]})
        cell = queue.lease("w0")
        clock.advance(8.0)
        assert queue.heartbeat(cell["fingerprint"], "w0")
        clock.advance(8.0)  # past the original deadline, not the renewed
        assert queue.expire_leases() == []

    def test_heartbeat_from_the_wrong_worker_is_refused(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        queue.submit({**SPEC, "techniques": ["base"]})
        cell = queue.lease("w0")
        assert not queue.heartbeat(cell["fingerprint"], "w1")


class TestRetryBudget:
    """Worker-death handling: re-enqueue exactly once, then fail."""

    def test_expired_lease_reenqueues_exactly_once(self, tmp_path):
        queue, events, clock = make_queue(tmp_path, lease_ttl=10.0)
        job = queue.submit({**SPEC, "techniques": ["base"]})
        fingerprint = job["cells"][0]
        # First loss: retried.
        queue.lease("w0")
        clock.advance(11.0)
        assert queue.expire_leases() == [fingerprint]
        assert names(events).count("cell.retried") == 1
        assert queue.cells[fingerprint]["state"] == "queued"
        # Second loss: the budget is spent — failed, job completes.
        queue.lease("w0")
        clock.advance(11.0)
        queue.expire_leases()
        assert names(events).count("cell.retried") == 1  # still exactly one
        assert names(events).count("cell.failed") == 1
        assert queue.jobs[job["id"]]["status"] == "failed"
        completed = events.named("job.completed")
        assert completed[-1]["reason"] == "failed"

    def test_retried_event_carries_the_reason(self, tmp_path):
        queue, events, clock = make_queue(tmp_path, lease_ttl=10.0)
        queue.submit({**SPEC, "techniques": ["base"]})
        cell = queue.lease("w0")
        clock.advance(11.0)
        queue.expire_leases()
        (retried,) = events.named("cell.retried")
        assert retried["reason"] == "lease_expired"
        assert retried["fingerprint"] == cell["fingerprint"]

    def test_reported_worker_death_uses_the_same_budget(self, tmp_path):
        queue, events, _clock = make_queue(tmp_path)
        job = queue.submit({**SPEC, "techniques": ["base"]})
        fingerprint = job["cells"][0]
        queue.lease("w0")
        queue.fail(fingerprint, "worker_death")
        (retried,) = events.named("cell.retried")
        assert retried["reason"] == "worker_death"
        queue.lease("w0")
        queue.fail(fingerprint, "worker_death")
        assert names(events).count("cell.failed") == 1

    def test_completion_after_reenqueue_still_counts(self, tmp_path):
        queue, _events, clock = make_queue(tmp_path, lease_ttl=10.0)
        job = queue.submit({**SPEC, "techniques": ["base"]})
        queue.lease("w0")
        clock.advance(11.0)
        queue.expire_leases()
        queue.lease("w1")
        queue.complete(job["cells"][0])
        assert queue.jobs[job["id"]]["status"] == "done"


class TestCancellation:
    def test_cancel_drains_exclusive_queued_cells(self, tmp_path):
        queue, events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        cancelled = queue.cancel(job["id"])
        assert cancelled["status"] == "cancelled"
        assert queue.pending() == []  # both cells dropped
        (completed,) = events.named("job.completed")
        assert completed["reason"] == "cancelled"

    def test_cancel_spares_cells_shared_with_live_jobs(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        queue.submit(SPEC)
        second = queue.submit(SPEC)
        queue.cancel(second["id"])
        # The first job still needs both cells.
        assert len(queue.pending()) == 2

    def test_cancel_leaves_leased_cells_to_finish(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        job = queue.submit({**SPEC, "techniques": ["base"]})
        cell = queue.lease("w0")
        queue.cancel(job["id"])
        assert queue.cells[cell["fingerprint"]]["state"] == "leased"
        # Finishing it stores the result; the job stays cancelled.
        queue.complete(cell["fingerprint"])
        assert queue.jobs[job["id"]]["status"] == "cancelled"

    def test_cancel_unknown_job_raises(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        with pytest.raises(KeyError):
            queue.cancel("job-999999")

    def test_cancel_is_idempotent(self, tmp_path):
        queue, events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        queue.cancel(job["id"])
        queue.cancel(job["id"])
        assert names(events).count("job.completed") == 1


class TestDurability:
    def test_state_survives_reload(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        reloaded = JobQueue(tmp_path / "queue", events=EventLog())
        assert reloaded.jobs[job["id"]]["spec"] == job["spec"]
        assert len(reloaded.pending()) == 2

    def test_leased_cells_recover_to_queued_on_reload(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        queue.submit(SPEC)
        queue.lease("w0")
        reloaded = JobQueue(tmp_path / "queue", events=EventLog())
        states = {c["state"] for c in reloaded.pending()}
        assert states == {"queued"}

    def test_job_ids_continue_from_the_persisted_counter(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        first = queue.submit(SPEC)
        reloaded = JobQueue(tmp_path / "queue", events=EventLog())
        second = reloaded.submit(SPEC)
        assert second["id"] != first["id"]

    def test_state_file_is_valid_json(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        queue.submit(SPEC)
        doc = json.loads((tmp_path / "queue" / "state.json").read_text())
        assert set(doc) == {"seq", "jobs", "cells"}


class TestStatus:
    def test_job_status_reports_cell_states(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        job = queue.submit(SPEC)
        queue.lease("w0")
        status = queue.job_status(job["id"])
        assert sorted(status["cell_states"].values()) == ["leased", "queued"]

    def test_unknown_job_raises(self, tmp_path):
        queue, _events, _clock = make_queue(tmp_path)
        with pytest.raises(KeyError):
            queue.job_status("job-404")
