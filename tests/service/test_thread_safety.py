"""Thread-safety regressions for the service (simlint SL201/SL202).

The whole-program lint pass moved every blocking queue/store call onto
executor threads, which makes JobQueue/EventLog/ResultStore genuinely
concurrent objects.  These tests pin the behaviours that protect:

* queue state survives concurrent submit/lease/complete hammering;
* the locked accessors the API layer uses instead of reading
  ``queue.jobs`` directly;
* EventLog subscribers run *outside* the log lock (a subscriber can
  touch the log from another thread without deadlocking an emitter);
* ``Service._wake_streams`` wakes the stream event from a foreign
  thread via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.events import EventLog
from repro.service.queue import JobQueue

SPEC = {
    "benchmarks": ["radiosity"],
    "techniques": ["base", "emesti"],
    "seeds": [1, 2, 3],
    "scale": 0.05,
}


def make_queue(tmp_path) -> JobQueue:
    return JobQueue(tmp_path / "queue", events=EventLog())


def test_concurrent_submits_keep_state_consistent(tmp_path):
    """Racing submits must neither lose jobs nor duplicate cells."""
    queue = make_queue(tmp_path)
    errors: list[BaseException] = []

    def submit(seed: int) -> None:
        try:
            queue.submit({**SPEC, "seeds": [seed]})
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(queue.jobs) == 8
    # 8 seeds x 2 techniques, every fingerprint unique.
    assert len(queue.cells) == 16


def test_concurrent_lease_never_double_leases(tmp_path):
    """Each cell is handed to exactly one of the racing workers."""
    queue = make_queue(tmp_path)
    queue.submit(SPEC)
    leased: list[str] = []
    lock = threading.Lock()

    def worker(worker_id: str) -> None:
        while True:
            cell = queue.lease(worker_id)
            if cell is None:
                return
            with lock:
                leased.append(cell["fingerprint"])
            queue.complete(cell["fingerprint"])

    threads = [
        threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(leased) == len(set(leased)) == 6
    job = next(iter(queue.jobs.values()))
    assert job["status"] == "done"


def test_locked_accessors_cover_the_api_reads(tmp_path):
    """has_job/status are what ``GET /jobs/{id}/events`` polls with;
    they must match the jobs dict and raise on unknown ids."""
    queue = make_queue(tmp_path)
    job = queue.submit(SPEC)
    assert queue.has_job(job["id"])
    assert not queue.has_job("nope")
    assert queue.status(job["id"]) == job["status"]
    try:
        queue.status("nope")
    except KeyError:
        pass
    else:
        raise AssertionError("status() must raise KeyError on unknown ids")


def test_subscribers_run_outside_the_event_log_lock():
    """A subscriber may block on another thread that itself reads the
    log.  If emit() still held the lock when calling subscribers,
    this would deadlock (the reader waits for the lock, the
    subscriber waits for the reader)."""
    log = EventLog()
    reader_done = threading.Event()

    def reader() -> None:
        log.named("job.enqueued")  # takes the log lock
        reader_done.set()

    def subscriber(_record) -> None:
        threading.Thread(target=reader).start()
        assert reader_done.wait(timeout=10), (
            "reader could not take the log lock while a subscriber ran"
        )

    log.subscribe(subscriber)
    log.emit("job.enqueued", job="j1", cells=2)
    assert reader_done.is_set()


def test_wake_streams_from_foreign_thread(tmp_path):
    """Event emits happen on executor threads; the stream wake-up
    must marshal onto the loop with call_soon_threadsafe."""
    from repro.service.api import Service

    async def main() -> None:
        service = Service(tmp_path)
        service._loop = asyncio.get_running_loop()
        service._wake.clear()
        threading.Thread(target=service._wake_streams).start()
        await asyncio.wait_for(service._wake.wait(), timeout=10)

    asyncio.run(main())


def test_wake_streams_without_a_loop_sets_directly(tmp_path):
    """Before start() (synchronous state-machine tests) there is no
    loop; the wake must not require one."""
    from repro.service.api import Service

    service = Service(tmp_path)
    service._wake_streams()
