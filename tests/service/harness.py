"""Test harness: a Service event loop in a daemon thread.

The blocking :class:`~repro.service.client.ServiceClient` (what the
CLI uses) needs the server's asyncio loop running elsewhere; tests get
a real TCP round-trip on an ephemeral port without subprocesses.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.api import Service


class ServiceHarness:
    """Start a :class:`Service` on an ephemeral port; join on shutdown."""

    def __init__(self, root, **service_kwargs):
        self.root = root
        self._service_kwargs = service_kwargs
        self.service: Service | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._error is not None:
            raise self._error

    def _run(self) -> None:
        """Thread body: own loop, start service, park until shutdown."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        """Start the service and wait for the shutdown signal."""
        self.service = Service(self.root, **self._service_kwargs)
        self.host, self.port = await self.service.start(port=0)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def shutdown(self) -> None:
        """Stop the service and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceHarness":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> None:
        """Shut the service down on context exit."""
        self.shutdown()
