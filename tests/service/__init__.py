"""Tests for the simulation service (queue, shard, HTTP API)."""
