"""EventLog ring truncation vs live event streams (ISSUE 10 sat. 3).

A deliberately tiny global ring (16 records) and short terminal-view
retention, exercised through real HTTP ``GET /jobs/{id}/events``
follows: a job's stream must replay its complete history even after
the global ring wrapped past its records, the overwrites must be
surfaced on ``/metrics`` as ``repro_service_events_dropped_total``,
and a job pruned from view retention replays empty (but the stream
still terminates cleanly).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.client import ServiceClient

from .harness import ServiceHarness

RING = 16


def _spec(seed):
    return {
        "benchmarks": ["radiosity"], "techniques": ["base"],
        "seeds": [seed], "scale": 0.05,
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A service whose EventLog wraps after 16 records."""
    root = tmp_path_factory.mktemp("truncation")
    with ServiceHarness(
        root, workers=1, executor=ThreadPoolExecutor(max_workers=1),
        max_event_records=RING, retain_terminal=2,
        telemetry_interval=0,
    ) as harness:
        yield harness


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.host, service.port)


@pytest.fixture(scope="module")
def wrapped(service, client):
    """Run job A, then enough jobs to wrap the ring past A's records."""
    job_a, events_a = client.submit_and_wait(_spec(1))
    # Each 1-cell job emits 6 events; three more jobs push 18 records
    # through the 16-slot ring, overwriting all of A's.
    followers = [client.submit_and_wait(_spec(seed))[0] for seed in (2, 3, 4)]
    return job_a, events_a, followers


class TestRingTruncationOverHttp:
    def test_live_follow_saw_the_full_lifecycle(self, wrapped):
        _job_a, events_a, _followers = wrapped
        names = [e["event"] for e in events_a]
        assert names == [
            "cell.enqueued", "job.enqueued", "cell.leased", "cell.started",
            "cell.finished", "job.completed",
        ]

    def test_global_ring_wrapped_and_dropped_is_counted(
        self, wrapped, service, client,
    ):
        log = service.service.events
        occ = log.occupancy()
        assert occ["capacity"] == RING
        assert occ["records"] == RING
        assert occ["dropped"] == log.dropped > 0
        # Surfaced on /metrics (the satellite-2 counter).
        text = client.metrics()
        assert f"repro_service_events_dropped_total {log.dropped}" in text

    def test_replay_survives_global_ring_wrap(self, wrapped, client):
        # Per-job views are plain lists, not windows into the global
        # ring: a retained job must replay completely no matter what
        # the ring overwrote.
        _job_a, _events_a, followers = wrapped
        newest = followers[-1]
        events = list(client.follow(newest["id"]))
        names = [e["event"] for e in events]
        assert names[0] == "cell.enqueued" and names[-1] == "job.completed"
        assert len(names) == 6

    def test_pruned_job_view_replays_empty_but_terminates(
        self, wrapped, client,
    ):
        # Three jobs completed after A with retain_terminal=2: A's
        # per-job view is pruned.  The stream still answers 200 (the
        # queue knows the job) and ends immediately on terminal
        # status with nothing to replay.
        job_a, _events_a, _followers = wrapped
        assert list(client.follow(job_a["id"])) == []

    def test_retained_job_still_replays_after_wrap(self, wrapped, client):
        # The second-newest follower is inside the retention window.
        _job_a, _events_a, followers = wrapped
        kept = followers[-2]
        names = [e["event"] for e in client.follow(kept["id"])]
        assert names[-1] == "job.completed" and len(names) == 6
