"""End-to-end service acceptance: HTTP, events, parity, cache reuse.

The PR's headline contract (ISSUE 7): submit a (2 benchmarks x
2 techniques x 1 seed) spec over real HTTP, observe the full named
event sequence, get summaries identical to a serial
:class:`~repro.experiments.runner.MatrixRunner`, and have an
immediate identical re-submission served entirely from cache —
``cell.cache_hit`` for every cell and zero ``cell.started``.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.runner import MatrixRunner, summaries_equal
from repro.service.client import ServiceClient, ServiceError

from .harness import ServiceHarness

SPEC = {
    "benchmarks": ["radiosity", "tpc-b"],
    "techniques": ["base", "emesti"],
    "seeds": [1],
    "scale": 0.05,
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One shared service (thread executor: no subprocess spawn)."""
    root = tmp_path_factory.mktemp("service")
    with ServiceHarness(
        root, workers=1, executor=ThreadPoolExecutor(max_workers=1),
    ) as harness:
        yield harness


@pytest.fixture(scope="module")
def client(service):
    """A blocking client bound to the harness's ephemeral port."""
    return ServiceClient(service.host, service.port)


@pytest.fixture(scope="module")
def first_run(client):
    """Submit the 2x2x1 spec once; later tests build on it."""
    job, events = client.submit_and_wait(SPEC)
    return job, events


class TestEndToEnd:
    def test_job_completes_done(self, first_run):
        job, _events = first_run
        assert job["status"] == "done"
        assert len(job["cells"]) == 4
        assert set(job["cell_states"].values()) == {"done"}

    def test_full_named_event_sequence(self, first_run):
        job, events = first_run
        names = [e["event"] for e in events]
        # Submission: one enqueue per cell, then the job acceptance.
        assert names[:5] == ["cell.enqueued"] * 4 + ["job.enqueued"]
        # Every cell runs its full lease -> start -> finish lifecycle.
        for name in ("cell.leased", "cell.started", "cell.finished"):
            assert names.count(name) == 4, name
        # Terminal event last, with the reason.
        assert names[-1] == "job.completed"
        assert events[-1]["reason"] == "done"
        # A fresh matrix simulates: nothing is cache-served.
        assert names.count("cell.cache_hit") == 0

    def test_results_identical_to_serial_matrix_runner(
        self, first_run, client, tmp_path,
    ):
        job, _events = first_run
        serial = MatrixRunner(
            scale=SPEC["scale"], results_dir=tmp_path / "serial",
            verbose=False,
        )
        serial_out = serial.run_matrix(
            benchmarks=SPEC["benchmarks"], techniques=SPEC["techniques"],
            seeds=SPEC["seeds"],
        )
        for fingerprint in job["cells"]:
            doc = client.result(fingerprint)
            key = serial.key(doc["benchmark"], doc["technique"], doc["seed"])
            assert summaries_equal(serial_out[key], doc["summary"]), key

    def test_identical_resubmission_is_fully_cache_served(
        self, first_run, client, service,
    ):
        simulated_before = service.service.shard.simulated
        job, events = client.submit_and_wait(SPEC)
        assert job["status"] == "done"
        names = [e["event"] for e in events]
        # Every cell cache-hit; zero simulations started.
        assert names.count("cell.cache_hit") == 4
        assert names.count("cell.started") == 0
        assert service.service.shard.simulated == simulated_before

    def test_result_endpoint_includes_coordinates(self, first_run, client):
        job, _events = first_run
        doc = client.result(job["cells"][0])
        assert {"benchmark", "technique", "seed", "scale",
                "summary"} <= set(doc)

    def test_metrics_export_counts_events(self, first_run, client):
        text = client.metrics()
        assert 'repro_service_events_total{event="cell.finished"}' in text

    def test_job_status_endpoint(self, first_run, client):
        job, _events = first_run
        doc = client.job(job["id"])
        assert doc["status"] == "done"


class TestFleetTelemetry:
    """ISSUE 10: distributed traces, /telemetry, sampled gauges."""

    def test_submission_is_assigned_its_trace_id(self, first_run, client):
        job, _events = first_run
        accepted = client.submit(SPEC)  # deduped: same cells, new job
        assert accepted["trace"] == accepted["job"]
        assert accepted["job"] != job["id"]
        list(client.follow(accepted["job"]))  # drain to terminal

    def test_streamed_events_carry_the_trace_id(self, first_run):
        job, events = first_run
        for record in events:
            assert record.get("trace") == job["id"], record

    def test_job_trace_is_one_causal_tree(self, first_run, client):
        job, _events = first_run
        rows = [json.loads(x) for x in client.trace(job["id"]).splitlines()]
        meta = rows.pop()
        assert meta["meta"] == "job-trace" and meta["trace"] == job["id"]
        begins = {r["span"]: r for r in rows if r["kind"] == "span.begin"}
        ended = {r["span"] for r in rows if r["kind"] == "span.end"}
        # Every span row belongs to the submitting job's trace.
        assert all(r["trace"] == job["id"] for r in begins.values())
        by_name: dict[str, list] = {}
        for r in begins.values():
            by_name.setdefault(r["name"], []).append(r)
        # One root job span; every cell.lease parents under it.
        (job_span,) = by_name["job"]
        assert job_span.get("parent") is None
        leases = by_name["cell.lease"]
        assert len(leases) == 4
        assert {r["parent"] for r in leases} == {job_span["span"]}
        # Every cell.run parents under its lease and was closed.
        runs = by_name["cell.run"]
        assert len(runs) == 4
        assert {r["parent"] for r in runs} <= {r["span"] for r in leases}
        service_spans = [job_span, *leases, *runs]
        assert {r["span"] for r in service_spans} <= ended
        # Worker-process coherence spans rode back over the pool
        # boundary: cycle-clock rows whose roots parent under a
        # cell.run span, trace id identical on both sides.
        worker = [r for r in begins.values() if r.get("clock") == "cycles"]
        assert worker, "no worker-side spans ingested"
        run_ids = {r["span"] for r in runs}
        assert any(r.get("parent") in run_ids for r in worker)
        assert all(r["trace"] == job["id"] for r in worker)

    def test_job_trace_exports_as_chrome_document(
        self, first_run, client, tmp_path,
    ):
        from repro.obs.report import load_trace
        from repro.obs.tracer import chrome_document

        job, _events = first_run
        path = tmp_path / "job-trace.jsonl"
        path.write_text(client.trace(job["id"]))
        load = load_trace(path)
        assert load.skipped == 1  # the meta trailer
        doc = chrome_document(load.events)
        phases = {e["ph"] for e in doc["traceEvents"]}
        # Async begin/end pairs plus flow arrows for the parent links.
        assert {"b", "e", "s", "f"} <= phases

    def test_client_supplied_trace_id_is_honored(self, first_run, client):
        accepted = client.submit({**SPEC, "trace": "e2e.custom-trace"})
        assert accepted["trace"] == "e2e.custom-trace"
        list(client.follow(accepted["job"]))
        rows = [
            json.loads(x)
            for x in client.trace(accepted["job"]).splitlines()
        ]
        begins = [r for r in rows if r.get("kind") == "span.begin"]
        assert begins
        assert all(r["trace"] == "e2e.custom-trace" for r in begins)

    def test_malformed_trace_id_is_rejected(self, client):
        with pytest.raises(ServiceError, match="(?i)trace"):
            client.submit({**SPEC, "trace": "no spaces allowed"})

    def test_unknown_job_trace_is_404(self, client):
        with pytest.raises(ServiceError, match="failed"):
            client.trace("job-999999")

    def test_telemetry_document_schema(self, first_run, client, service):
        # The module harness runs with the default 1 s cadence; force
        # one deterministic sample instead of sleeping for the loop.
        service.service._sample_once()
        doc = client.telemetry()
        assert doc["schema"] == 1
        latest = doc["latest"]
        assert latest is not None
        assert latest["leases"] >= 4
        assert latest["lease_wait_max"] >= latest["lease_wait_avg"] >= 0
        assert latest["workers"] == 1
        assert doc["event_ring"]["capacity"] == 100_000
        assert doc["traces"]["events"] > 0
        assert [e for e in doc["events"] if e["event"] == "job.completed"]

    def test_sampled_gauges_reach_prometheus(
        self, first_run, client, service,
    ):
        service.service._sample_once()
        text = client.metrics()
        assert "repro_service_queue_depth" in text
        assert "repro_service_worker_utilization 0" in text
        assert "repro_service_events_dropped_total 0" in text
        assert "repro_service_lease_latency_seconds_count" in text


class TestApiErrors:
    def test_bad_spec_is_rejected_with_400(self, client):
        with pytest.raises(ServiceError, match="(?i)unknown benchmark"):
            client.submit({**SPEC, "benchmarks": ["quake"]})

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="lookup failed"):
            client.job("job-999999")

    def test_unknown_result_is_404(self, client):
        with pytest.raises(ServiceError, match="lookup failed"):
            client.result("00000000deadbeef")

    def test_unknown_route_is_404(self, client):
        status, _doc = client._request("GET", "/nope")
        assert status == 404


class TestCancellationOverHttp:
    def test_cancel_drains_and_streams_terminal_event(self, client):
        # A deliberately deep job (many seeds) so cells are still
        # queued when the cancel lands.
        accepted = client.submit({
            "benchmarks": ["radiosity"], "techniques": ["base"],
            "seeds": [101, 102, 103, 104, 105, 106, 107, 108],
            "scale": 0.05,
        })
        cancelled = client.cancel(accepted["job"])
        assert cancelled["status"] == "cancelled"
        events = list(client.follow(accepted["job"]))
        assert events[-1]["event"] == "job.completed"
        assert events[-1]["reason"] == "cancelled"
        job = client.job(accepted["job"])
        # Nothing left queued for this job: drained cells report
        # dropped (or finished, for any cell a worker already held).
        assert all(
            state in ("dropped", "done")
            for state in job["cell_states"].values()
        )
