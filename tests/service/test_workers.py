"""Worker shard failure paths: crash recovery, cache serving, store.

The shard runs on a real asyncio loop (driven by ``asyncio.run``
inside each test) with a thread executor — no worker subprocesses, so
the failure injections are deterministic and fast.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.runner import MatrixRunner, summaries_equal
from repro.service.events import EventLog
from repro.service.queue import JobQueue
from repro.service.workers import ResultStore, WorkerShard

SPEC = {
    "benchmarks": ["radiosity"],
    "techniques": ["base"],
    "seeds": [1],
    "scale": 0.05,
}


class CrashingExecutor(ThreadPoolExecutor):
    """Dies (BrokenProcessPool) for the first N submissions."""

    def __init__(self, crashes: int = 1):
        super().__init__(max_workers=1)
        self.crashes = crashes
        self.submissions = 0

    def submit(self, fn, /, *args, **kwargs):
        """Fail the first ``crashes`` submissions, then delegate."""
        self.submissions += 1
        if self.submissions <= self.crashes:
            future: Future = Future()
            future.set_exception(BrokenProcessPool("worker died"))
            return future
        return super().submit(fn, *args, **kwargs)


def build(tmp_path, executor, **queue_kwargs):
    """Queue + store + shard wired to one event log."""
    events = EventLog()
    queue = JobQueue(tmp_path / "queue", events=events, **queue_kwargs)
    store = ResultStore(tmp_path / "results")
    shard = WorkerShard(queue, store, events, workers=1, executor=executor)
    return events, queue, store, shard


async def run_job(queue, shard, spec, timeout: float = 60.0) -> dict:
    """Submit and drive the shard until the job is terminal."""
    job = queue.submit(spec)
    await shard.start()
    try:
        deadline = asyncio.get_running_loop().time() + timeout
        while queue.jobs[job["id"]]["status"] not in (
            "done", "failed", "cancelled",
        ):
            assert asyncio.get_running_loop().time() < deadline, (
                "job did not settle in time"
            )
            await asyncio.sleep(0.02)
    finally:
        await shard.stop()
    return queue.jobs[job["id"]]


class TestCrashRecovery:
    def test_worker_crash_mid_lease_reenqueues_exactly_once(
        self, tmp_path, monkeypatch,
    ):
        # Crash the first attempt; the replacement pool (patched to a
        # plain thread executor) completes the retry.  The contract:
        # exactly one cell.retried{worker_death}, then success.
        from repro.service import workers as workers_module

        replacement = ThreadPoolExecutor(max_workers=1)
        monkeypatch.setattr(workers_module, "warm_pool",
                            lambda _n, **_kw: replacement)
        monkeypatch.setattr(workers_module, "retire_pool",
                            lambda *_a, **_kw: None)

        async def scenario():
            events, queue, store, shard = build(
                tmp_path, CrashingExecutor(crashes=1),
            )
            job = await run_job(queue, shard, SPEC)
            assert job["status"] == "done"
            names = [r["event"] for r in events.records]
            assert names.count("cell.retried") == 1
            (retried,) = events.named("cell.retried")
            assert retried["reason"] == "worker_death"
            # The crash consumed one lease; the retry simulated.
            assert names.count("cell.started") == 2
            assert shard.simulated == 1

        asyncio.run(scenario())

    def test_repeated_crashes_exhaust_the_budget_and_fail_the_job(
        self, tmp_path, monkeypatch,
    ):
        from repro.service import workers as workers_module

        crasher = CrashingExecutor(crashes=99)
        monkeypatch.setattr(workers_module, "warm_pool",
                            lambda _n, **_kw: crasher)
        monkeypatch.setattr(workers_module, "retire_pool",
                            lambda *_a, **_kw: None)

        async def scenario():
            events, queue, _store, shard = build(tmp_path, crasher)
            job = await run_job(queue, shard, SPEC)
            assert job["status"] == "failed"
            names = [r["event"] for r in events.records]
            assert names.count("cell.retried") == 1  # budget: exactly one
            assert names.count("cell.failed") == 1
            completed = events.named("job.completed")
            assert completed[-1]["reason"] == "failed"

        asyncio.run(scenario())

    def test_broken_injected_executor_never_retires_warm_pools(
        self, tmp_path, monkeypatch,
    ):
        # The shard did not create its executor, so it must not tear
        # down a warm pool — retire_pool is keyed by (width,
        # initializer) and a same-width pool could belong to another
        # component (e.g. a bench sweep) in this process.
        from repro.service import workers as workers_module

        retired: list = []
        replacement = ThreadPoolExecutor(max_workers=1)
        monkeypatch.setattr(workers_module, "warm_pool",
                            lambda *_a, **_kw: replacement)
        monkeypatch.setattr(workers_module, "retire_pool",
                            lambda *a, **kw: retired.append((a, kw)))

        async def scenario():
            _events, queue, _store, shard = build(
                tmp_path, CrashingExecutor(crashes=1),
            )
            job = await run_job(queue, shard, SPEC)
            assert job["status"] == "done"
            assert retired == []

        asyncio.run(scenario())

    def test_raising_cell_retries_as_worker_error(self, tmp_path):
        async def scenario():
            events, queue, _store, shard = build(
                tmp_path, ThreadPoolExecutor(max_workers=1),
            )
            # An unknown benchmark cannot get this far through spec
            # validation, so inject the failure at the cell level.
            job = queue.submit(SPEC)
            fingerprint = job["cells"][0]
            queue.lease("w0")
            queue.fail(fingerprint, "worker_error")
            (retried,) = events.named("cell.retried")
            assert retried["reason"] == "worker_error"
            assert queue.cells[fingerprint]["state"] == "queued"

        asyncio.run(scenario())


class TestCacheServing:
    def test_second_run_is_served_from_cache(self, tmp_path):
        async def scenario():
            events, queue, store, shard = build(
                tmp_path, ThreadPoolExecutor(max_workers=1),
            )
            job = await run_job(queue, shard, SPEC)
            assert job["status"] == "done"
            assert shard.simulated == 1
            # Same spec again: the finished cell left the live set,
            # so it re-enqueues and is then served without running.
            job2 = await run_job(queue, shard, SPEC)
            assert job2["status"] == "done"
            assert shard.simulated == 1  # no new simulation
            names = [r["event"] for r in events.records]
            assert names.count("cell.cache_hit") == 1
            assert names.count("cell.started") == 1

        asyncio.run(scenario())

    def test_service_summary_matches_serial_matrix_runner(self, tmp_path):
        async def scenario():
            _events, queue, store, shard = build(
                tmp_path, ThreadPoolExecutor(max_workers=1),
            )
            await run_job(queue, shard, SPEC)
            serial = MatrixRunner(
                scale=SPEC["scale"], results_dir=tmp_path / "serial",
                verbose=False,
            )
            expected = serial.run_one("radiosity", "base", 1)
            got = store.runner(SPEC["scale"]).cached("radiosity", "base", 1)
            assert got is not None
            assert summaries_equal(expected, got)

        asyncio.run(scenario())


class TestResultStore:
    def test_fingerprint_index_resolves_results(self, tmp_path):
        async def scenario():
            _events, queue, store, shard = build(
                tmp_path, ThreadPoolExecutor(max_workers=1),
            )
            job = await run_job(queue, shard, SPEC)
            doc = store.by_fingerprint(job["cells"][0])
            assert doc is not None
            assert doc["benchmark"] == "radiosity"
            assert doc["summary"]["cycles"] > 0

        asyncio.run(scenario())

    def test_unknown_fingerprint_is_none(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        assert store.by_fingerprint("doesnotexist0000") is None

    def test_index_survives_reload(self, tmp_path):
        async def scenario():
            _events, queue, store, shard = build(
                tmp_path, ThreadPoolExecutor(max_workers=1),
            )
            job = await run_job(queue, shard, SPEC)
            store.close()
            reloaded = ResultStore(tmp_path / "results")
            assert reloaded.by_fingerprint(job["cells"][0]) is not None

        asyncio.run(scenario())
