"""The named-event contract: registry validation, routing, metrics."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.events import EVENT_NAMES, EVENT_SPECS, EventLog


class TestRegistry:
    def test_issue_contract_names_are_declared(self):
        # The ISSUE names these six explicitly; the registry must
        # carry them (plus the rest of the lifecycle).
        for name in ("job.enqueued", "cell.leased", "cell.started",
                     "cell.cache_hit", "cell.retried", "job.completed"):
            assert name in EVENT_NAMES

    def test_specs_declare_required_fields(self):
        assert "reason" in EVENT_SPECS["job.completed"].fields
        assert "reason" in EVENT_SPECS["cell.retried"].fields
        assert "fingerprint" in EVENT_SPECS["cell.cache_hit"].fields


class TestEmit:
    def test_undeclared_name_is_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="undeclared"):
            log.emit("cell.vibes", fingerprint="f")

    def test_missing_required_field_is_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="missing required"):
            log.emit("job.completed", job="job-1")  # no reason

    def test_records_are_sequenced(self):
        log = EventLog()
        log.emit("job.enqueued", job="job-1", cells=2)
        log.emit("job.completed", job="job-1", reason="done")
        assert [r["seq"] for r in log.records] == [1, 2]

    def test_metrics_counter_tracks_event_names(self):
        registry = MetricsRegistry()
        log = EventLog(metrics=registry)
        log.emit("job.enqueued", job="job-1", cells=1)
        log.emit("job.enqueued", job="job-2", cells=1)
        text = registry.to_prometheus()
        assert 'repro_service_events_total{event="job.enqueued"} 2' in text


class TestRouting:
    def test_job_field_routes_to_job_view(self):
        log = EventLog()
        log.emit("job.enqueued", job="job-1", cells=1)
        log.emit("job.enqueued", job="job-2", cells=1)
        assert [r["job"] for r in log.for_job("job-1")] == ["job-1"]

    def test_attached_fingerprints_route_cell_events(self):
        log = EventLog()
        log.attach("f00d", "job-1")
        log.emit("cell.leased", fingerprint="f00d", worker="w0")
        log.emit("cell.leased", fingerprint="beef", worker="w0")
        events = log.for_job("job-1")
        assert len(events) == 1
        assert events[0]["fingerprint"] == "f00d"

    def test_shared_cell_routes_to_every_attached_job(self):
        log = EventLog()
        log.attach("f00d", "job-1")
        log.attach("f00d", "job-2")
        log.emit("cell.cache_hit", fingerprint="f00d")
        assert log.for_job("job-1") == log.for_job("job-2")

    def test_detach_stops_routing(self):
        log = EventLog()
        log.attach("f00d", "job-1")
        log.detach_cell("f00d")
        log.emit("cell.finished", fingerprint="f00d")
        assert log.for_job("job-1") == []

    def test_subscribers_see_every_record(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("cell.finished", fingerprint="f")
        log.unsubscribe(seen.append)
        log.emit("cell.finished", fingerprint="g")
        assert [r["fingerprint"] for r in seen] == ["f"]

    def test_ndjson_round_trips(self):
        log = EventLog()
        log.emit("job.enqueued", job="job-1", cells=3)
        lines = log.to_ndjson().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["job.enqueued"]


class TestBoundedMemory:
    def test_global_log_is_ring_capped(self):
        log = EventLog(max_records=3)
        for i in range(5):
            log.emit("cell.finished", fingerprint=f"f{i}")
        assert [r["fingerprint"] for r in log.records] == ["f2", "f3", "f4"]
        assert [r["seq"] for r in log.records] == [3, 4, 5]

    def test_terminal_job_views_prune_beyond_retention(self):
        log = EventLog(retain_terminal=2)
        for i in range(4):
            job = f"job-{i}"
            log.emit("job.enqueued", job=job, cells=1)
            log.emit("job.completed", job=job, reason="done")
        # The two most recent terminal jobs still replay...
        assert len(log.for_job("job-2")) == 2
        assert len(log.for_job("job-3")) == 2
        # ...older ones were pruned.
        assert log.for_job("job-0") == []
        assert log.for_job("job-1") == []

    def test_unbounded_when_caps_are_none(self):
        log = EventLog(max_records=None, retain_terminal=None)
        for i in range(4):
            job = f"job-{i}"
            log.emit("job.enqueued", job=job, cells=1)
            log.emit("job.completed", job=job, reason="done")
        assert len(log.records) == 8
        assert len(log.for_job("job-0")) == 2


class TestDropAccounting:
    def test_undeclared_payload_field_is_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="undeclared fields"):
            log.emit("cell.finished", fingerprint="f", bogus=1)

    def test_trace_is_declared_optional_everywhere(self):
        log = EventLog()
        for name, spec in EVENT_SPECS.items():
            assert "trace" in spec.optional, name
        record = log.emit("cell.finished", fingerprint="f", trace="t-1")
        assert record["trace"] == "t-1"

    def test_ring_overwrite_bumps_dropped_counter(self):
        registry = MetricsRegistry()
        log = EventLog(metrics=registry, max_records=3)
        for i in range(5):
            log.emit("cell.finished", fingerprint=f"f{i}")
        assert log.dropped == 2
        assert "repro_service_events_dropped_total 2" in (
            registry.to_prometheus()
        )

    def test_unbounded_log_never_drops(self):
        log = EventLog(max_records=None)
        for i in range(5):
            log.emit("cell.finished", fingerprint=f"f{i}")
        assert log.dropped == 0

    def test_on_drop_hook_fires_on_first_drop_only(self):
        calls: list[int] = []
        log = EventLog(max_records=2, on_drop=calls.append)
        for i in range(6):
            log.emit("cell.finished", fingerprint=f"f{i}")
        # First overwrite notes once; the next note waits for
        # DROP_NOTE_EVERY more drops.
        assert calls == [1]

    def test_tail_returns_newest_records(self):
        log = EventLog()
        for i in range(5):
            log.emit("cell.finished", fingerprint=f"f{i}")
        assert [r["fingerprint"] for r in log.tail(2)] == ["f3", "f4"]

    def test_occupancy_reports_ring_state(self):
        log = EventLog(max_records=3)
        for i in range(4):
            log.emit("cell.finished", fingerprint=f"f{i}")
        occ = log.occupancy()
        assert occ["records"] == 3
        assert occ["capacity"] == 3
        assert occ["dropped"] == 1
