"""Fuzz campaign cells through the service: spec, queue, worker, store.

A ``{"kind": "fuzz"}`` spec explodes into one campaign cell per seed.
The cells ride the exact same lease / retry / dedupe machinery as
simulation cells; what differs is the payload (seed + budget +
protocols), the executor entry point (:func:`run_fuzz_cell`), and the
result home (``results/fuzz/``).  These tests drive a real shard on a
thread executor — fast, deterministic, no subprocesses.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.events import EventLog
from repro.service.queue import (
    JobQueue,
    SpecError,
    fuzz_cell_identity,
    validate_spec,
)
from repro.service.workers import ResultStore, WorkerShard

FUZZ_SPEC = {"kind": "fuzz", "seeds": [1], "budget": 8}


class TestFuzzSpecValidation:
    def test_defaults_filled_in(self):
        spec = validate_spec(FUZZ_SPEC)
        assert spec["kind"] == "fuzz"
        assert spec["protocols"] == ["mesi", "mesti", "emesti"]
        assert spec["interconnect"] == "bus"
        assert spec["priority"] == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown job kind"):
            validate_spec({"kind": "frobnicate", "seeds": [1]})

    def test_empty_seeds_rejected(self):
        with pytest.raises(SpecError, match="seeds"):
            validate_spec({"kind": "fuzz", "seeds": []})

    def test_boolean_seeds_rejected(self):
        with pytest.raises(SpecError, match="booleans"):
            validate_spec({"kind": "fuzz", "seeds": [True]})

    @pytest.mark.parametrize("budget", [0, -1, 10_001, 1.5, True, "big"])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(SpecError, match="budget"):
            validate_spec({"kind": "fuzz", "seeds": [1], "budget": budget})

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SpecError, match="protocol"):
            validate_spec(
                {"kind": "fuzz", "seeds": [1], "protocols": ["mosi"]}
            )

    def test_bad_interconnect_rejected(self):
        with pytest.raises(SpecError, match="interconnect"):
            validate_spec(
                {"kind": "fuzz", "seeds": [1], "interconnect": "mesh"}
            )

    def test_axes_deduplicated(self):
        spec = validate_spec({
            "kind": "fuzz", "seeds": [2, 2, 3],
            "protocols": ["mesi", "mesi", "mesti"],
        })
        assert spec["seeds"] == [2, 3]
        assert spec["protocols"] == ["mesi", "mesti"]

    def test_sim_specs_unchanged_by_kind_dispatch(self):
        spec = validate_spec({
            "benchmarks": ["radiosity"], "techniques": ["base"],
            "seeds": [1],
        })
        assert "kind" not in spec  # back-compat with persisted state


class TestFingerprint:
    def test_identity_is_stable_and_parameter_sensitive(self):
        base = fuzz_cell_identity(1, 8, ["mesi"], "bus")
        assert base.startswith("fuzz-")
        assert base == fuzz_cell_identity(1, 8, ["mesi"], "bus")
        assert base != fuzz_cell_identity(2, 8, ["mesi"], "bus")
        assert base != fuzz_cell_identity(1, 9, ["mesi"], "bus")
        assert base != fuzz_cell_identity(1, 8, ["mesti"], "bus")
        assert base != fuzz_cell_identity(1, 8, ["mesi"], "directory")

    def test_submit_mints_one_cell_per_seed(self, tmp_path):
        queue = JobQueue(tmp_path / "queue", events=EventLog())
        job = queue.submit(validate_spec(
            {"kind": "fuzz", "seeds": [1, 2], "budget": 8}
        ))
        assert len(job["cells"]) == 2
        assert all(c.startswith("fuzz-") for c in job["cells"])
        for fingerprint in job["cells"]:
            cell = queue.cells[fingerprint]
            assert cell["kind"] == "fuzz"
            assert cell["budget"] == 8


def build(tmp_path):
    events = EventLog()
    queue = JobQueue(tmp_path / "queue", events=events)
    store = ResultStore(tmp_path / "results")
    shard = WorkerShard(
        queue, store, events, workers=1,
        executor=ThreadPoolExecutor(max_workers=1),
    )
    return events, queue, store, shard


async def run_job(queue, shard, spec, timeout: float = 120.0) -> dict:
    job = queue.submit(spec)
    await shard.start()
    try:
        deadline = asyncio.get_running_loop().time() + timeout
        while queue.jobs[job["id"]]["status"] not in (
            "done", "failed", "cancelled",
        ):
            assert asyncio.get_running_loop().time() < deadline, (
                "fuzz job did not settle in time"
            )
            await asyncio.sleep(0.02)
    finally:
        await shard.stop()
    return queue.jobs[job["id"]]


class TestFuzzJobEndToEnd:
    def test_fuzz_job_runs_stores_and_caches(self, tmp_path):
        async def scenario():
            events, queue, store, shard = build(tmp_path)
            spec = validate_spec(FUZZ_SPEC)

            job = await run_job(queue, shard, spec)
            assert job["status"] == "done"
            assert shard.fuzzed == 1 and shard.simulated == 0

            fingerprint = fuzz_cell_identity(
                1, 8, spec["protocols"], spec["interconnect"],
            )
            doc = store.by_fingerprint(fingerprint)
            assert doc is not None
            assert doc["ok"] is True and doc["fuzz"] is True
            assert doc["fingerprint"] == fingerprint

            # Identical resubmission is served from the store.
            job2 = await run_job(queue, shard, spec)
            assert job2["status"] == "done"
            assert shard.fuzzed == 1, "cache hit must not re-fuzz"
            names = [r["event"] for r in events.records]
            assert names.count("cell.cache_hit") == 1
            assert names.count("cell.started") == 1

        asyncio.run(scenario())

    def test_clean_campaign_emits_no_finding_events(self, tmp_path):
        async def scenario():
            events, queue, shard_store, shard = build(tmp_path)
            await run_job(queue, shard, validate_spec(FUZZ_SPEC))
            assert events.named("cell.fuzz_finding") == []

        asyncio.run(scenario())
