"""repro-sim service top: pure renderer + refresh loop."""

from __future__ import annotations

from repro.service.top import CLEAR, _sparkline, render_top, run_top


def _doc(samples=2):
    rows = [
        {"ts": i, "queued": i, "leased": 1, "jobs_active": 1,
         "jobs_done": 2, "jobs_failed": 0, "jobs_cancelled": 0,
         "workers": 2, "busy": 1, "utilization": 0.5, "leases": 4,
         "lease_wait_avg": 0.01, "lease_wait_max": 0.02,
         "cache_hit_ratio": 0.25, "event_records": 10 + i,
         "event_dropped": 0}
        for i in range(samples)
    ]
    return {
        "schema": 1, "capacity": 720, "recorded": samples,
        "latest": rows[-1] if rows else None, "samples": rows,
        "events": [
            {"seq": 7, "event": "cell.leased", "fingerprint": "f0",
             "trace": "job-1"},
        ],
        "event_ring": {"records": 11, "capacity": 100_000, "dropped": 0,
                       "views": 1},
        "traces": {"traces": 1, "events": 42, "dropped": 0},
    }


class TestSparkline:
    def test_flat_series_renders_floor(self):
        assert _sparkline([3, 3, 3]) == "▁▁▁"

    def test_ramp_is_monotone(self):
        line = _sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"

    def test_width_takes_newest(self):
        assert len(_sparkline(list(range(100)), width=5)) == 5

    def test_empty_series(self):
        assert _sparkline([]) == ""


class TestRenderTop:
    def test_vitals_lines_present(self):
        text = render_top(_doc())
        assert "queued=1" in text
        assert "busy=1/2" in text
        assert "hit ratio=0.25" in text
        assert "ring=11/100000" in text
        assert "1 (42 spans)" in text

    def test_sparklines_and_events_rendered(self):
        text = render_top(_doc(samples=8))
        assert "util" in text and "cache" in text
        assert "cell.leased" in text and "trace=job-1" in text

    def test_empty_document_renders(self):
        text = render_top({"samples": [], "latest": None})
        assert "no telemetry samples yet" in text


class _FakeClient:
    def __init__(self):
        self.calls = 0

    def telemetry(self):
        self.calls += 1
        return _doc()


class TestRunTop:
    def test_bounded_iterations(self):
        client = _FakeClient()
        frames: list[str] = []
        shown = run_top(client, interval=0.0, iterations=3,
                        out=frames.append, clear=False)
        assert shown == 3 and client.calls == 3
        assert all(not f.startswith(CLEAR) for f in frames)

    def test_clear_prefixes_frames(self):
        frames: list[str] = []
        run_top(_FakeClient(), interval=0.0, iterations=1,
                out=frames.append, clear=True)
        assert frames[0].startswith(CLEAR)
