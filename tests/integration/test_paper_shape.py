"""The paper's headline shape, pinned as a regression test.

Reduced-scale, single-seed versions of the Figure 7/8 claims that the
full experiment harness reproduces (see EXPERIMENTS.md).  If a change
to the simulator or the workload models breaks one of these, the
reproduction's story has changed and EXPERIMENTS.md must be revisited.
"""

import dataclasses

import pytest

from repro.common.config import scaled_config
from repro.experiments.runner import DEFAULT_JITTER, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark

SCALE = 0.3
SEED = 1


@pytest.fixture(scope="module")
def cells():
    cache = {}

    def get(benchmark, technique):
        key = (benchmark, technique)
        if key not in cache:
            cfg = dataclasses.replace(
                configure_technique(scaled_config(), technique),
                latency_jitter=DEFAULT_JITTER,
            )
            result = System(cfg, get_benchmark(benchmark, scale=SCALE), seed=SEED).run(
                max_cycles=300_000_000, max_events=150_000_000
            )
            cache[key] = summarize(result)
        return cache[key]

    return get


def speedup(cells, benchmark, technique):
    return cells(benchmark, "base")["cycles"] / cells(benchmark, technique)["cycles"]


def test_plain_mesti_hurts_specjbb(cells):
    assert speedup(cells, "specjbb", "mesti") < 0.95


def test_emesti_recovers_specjbb(cells):
    assert speedup(cells, "specjbb", "emesti") > 0.97
    assert speedup(cells, "specjbb", "emesti") > speedup(cells, "specjbb", "mesti")


def test_emesti_validate_traffic_far_below_mesti_on_specjbb(cells):
    mesti = cells("specjbb", "mesti")
    emesti = cells("specjbb", "emesti")
    assert emesti["txn_validate"] < mesti["txn_validate"] * 0.2


def test_sle_wins_raytrace(cells):
    assert speedup(cells, "raytrace", "sle") > 1.05
    assert speedup(cells, "raytrace", "sle") > speedup(cells, "raytrace", "emesti")


def test_sle_eliminates_raytrace_lock_traffic(cells):
    base = cells("raytrace", "base")
    sle = cells("raytrace", "sle")
    assert sle["txn_total"] < base["txn_total"] * 0.8


def test_tpcb_gains_from_producer_side_elimination(cells):
    assert speedup(cells, "tpc-b", "mesti") > 1.0
    assert speedup(cells, "tpc-b", "emesti") > 1.0


def test_tpcb_combination_beats_either_alone(cells):
    combo = speedup(cells, "tpc-b", "emesti+lvp")
    assert combo > 1.03
    assert combo >= max(
        speedup(cells, "tpc-b", "emesti"), speedup(cells, "tpc-b", "lvp")
    ) - 0.03


def test_validates_reduce_tpcb_data_transactions(cells):
    base = cells("tpc-b", "base")
    emesti = cells("tpc-b", "emesti")
    base_data = base["txn_read"] + base["txn_readx"]
    emesti_data = emesti["txn_read"] + emesti["txn_readx"]
    assert emesti_data < base_data


def test_lvp_never_reduces_data_transactions(cells):
    base = cells("tpc-b", "base")
    lvp = cells("tpc-b", "lvp")
    base_data = base["txn_read"] + base["txn_readx"]
    lvp_data = lvp["txn_read"] + lvp["txn_readx"]
    assert lvp_data >= base_data * 0.98  # §5.1.2: no transfer is saved
