"""Cross-technique interplay stress tests."""

import dataclasses

import pytest

from repro.coherence.states import LineState
from repro.cpu.program import BlockBuilder
from repro.system.system import System
from repro.system.techniques import configure_technique
from tests.harness import ScriptWorkload

LOCK = 0x4000
SHARED = 0x4100
SCRATCH = 0x4200


def test_lvp_squash_inside_sle_region_recovers(tiny_config):
    """An LVP mispredict tearing out part of an elided region must
    leave both mechanisms consistent (engine rebuilds its sets)."""
    cfg = dataclasses.replace(
        configure_technique(tiny_config, "lvp+sle"), n_procs=2
    )
    done = []

    def p0(tid, config, rng):
        b = BlockBuilder()
        # Warm SHARED so a residue exists, and watch the flag.
        b.load_ctl(SHARED)
        v = yield b.take()
        while True:
            b.load_ctl(SCRATCH)
            f = yield b.take()
            if f:
                break
            for _ in range(4):
                b.alu(latency=2)
        # Elidable critical section containing a load that will
        # mispredict (P1 changed SHARED word 0).
        b.larx(LOCK, pc=0xA00)
        v = yield b.take()
        b.stcx(LOCK, 1, pc=0xA00, meta={"sle_fallback": ("cas",)})
        ok = yield b.take()
        dst = b.fresh()
        b.load(SHARED, dst)  # spec from stale residue -> squash
        b.store(SCRATCH + 8, 7)
        b.store(LOCK, 0)
        b.end()
        yield b.take()
        done.append(tid)

    def p1(tid, config, rng):
        b = BlockBuilder()
        b.store(SHARED, 99)
        b.sync()
        b.store(SCRATCH, 1)
        b.end()
        yield b.take()
        done.append(tid)

    sys_ = System(cfg, ScriptWorkload(p0, p1), seed=4)
    res = sys_.run(max_cycles=20_000_000, max_events=8_000_000)
    assert sys_.cores[0].finished and sys_.cores[1].finished
    # The region's store landed exactly once, whatever path was taken.
    line = sys_.controllers[0].lookup(SCRATCH)
    assert line.data[1] == 7
    # The lock ended free.
    lock_line = sys_.controllers[0].lookup(LOCK)
    assert lock_line.data[0] == 0


def test_emesti_validates_lock_while_sle_elides_elsewhere(tiny4_config):
    """E-MESTI and SLE coexist: one lock is elided (never transfers),
    another is really handed around (validates capture its pair)."""
    cfg = configure_technique(tiny4_config, "emesti+sle")
    ELIDED, HANDED = LOCK, LOCK + 0x100

    def elider(tid):
        def prog(_tid, config, rng):
            b = BlockBuilder()
            for r in range(4):
                while True:
                    b.larx(ELIDED, pc=0xB00)
                    v = yield b.take()
                    if v != 0:
                        b.alu(latency=4)
                        continue
                    b.stcx(ELIDED, tid + 1, pc=0xB00,
                           meta={"sle_fallback": ("cas",)})
                    ok = yield b.take()
                    if ok:
                        break
                b.store(SHARED + tid * 0x40, r)
                b.store(ELIDED, 0)
                for _ in range(8):
                    b.alu(latency=2)
            b.end()
            yield b.take()

        return prog

    def hander(tid):
        def prog(_tid, config, rng):
            b = BlockBuilder()
            for r in range(14):
                b.store(HANDED + 8 * (tid % 2), r + 1)
                b.store(HANDED + 8 * (tid % 2), 0)  # silent pair
                for _ in range(12):
                    b.alu(latency=2)
                b.load(HANDED + 8 * ((tid + 1) % 2), b.fresh())
                yield b.take()
            b.end()
            yield b.take()

        return prog

    progs = [elider(0), elider(1), hander(2), hander(3)]
    sys_ = System(cfg, ScriptWorkload(*progs), seed=6)
    res = sys_.run(max_cycles=30_000_000, max_events=10_000_000)
    successes = sum(sys_.stats.get(f"sle{i}.successes") for i in range(4))
    assert successes >= 1
    assert res.txn("validate") >= 1  # E-MESTI active on the handed flags


def test_mesti_protocol_under_lvp_residue(tiny_config):
    """T-state lines feed LVP; validates must still re-install them."""
    cfg = configure_technique(tiny_config, "mesti+lvp")
    from tests.harness import MemHarness

    h = MemHarness(cfg)
    h.store(0, SHARED, 0)
    h.load(1, SHARED)
    h.store(0, SHARED, 1)
    assert h.line_state(1, SHARED) is LineState.T
    # LVP predicts from the T line while the revert is still pending.
    status, value, op = h.load(1, SHARED)
    assert status == "spec" and value == 0
    h.drain()
    assert op.squashed  # real value was 1 — and the read made 1 the
    # new globally visible value, so "reverting" to 0 is NOT temporal
    # silence anymore; P1's fresh copy saves 1 on the next invalidation.
    h.store(0, SHARED, 0)
    h.drain()
    line1 = h.controllers[1].lookup(SHARED)
    assert line1.state is LineState.T and line1.data[0] == 1
    # Reverting to the *visible* value (1) completes a silent pair.
    h.store(0, SHARED, 1)
    h.drain()
    assert h.line_state(1, SHARED) is LineState.S
    assert h.load(1, SHARED)[1] == 1
