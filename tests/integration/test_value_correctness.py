"""End-to-end value correctness under every technique combination.

Whatever speculation, validate broadcasting, or elision happens, the
architectural outcome must be exact: lock-protected counters reach
their precise totals, and producer/consumer data arrives intact.
"""

import dataclasses

import pytest

from repro.cpu.program import BlockBuilder
from repro.system.system import System
from repro.system.techniques import ALL_TECHNIQUES, configure_technique
from tests.harness import ScriptWorkload

LOCK = 0x6000
COUNTER = 0x6100
INCREMENTS = 8


def locked_counter(tid):
    """Increment a shared counter INCREMENTS times under a spin lock."""

    def prog(_tid, config, rng):
        b = BlockBuilder()
        for _ in range(INCREMENTS):
            while True:
                b.larx(LOCK, pc=0x10)
                v = yield b.take()
                if v != 0:
                    b.alu(latency=4)
                    continue
                b.stcx(LOCK, tid + 1, pc=0x10, meta={"sle_fallback": ("cas",)})
                ok = yield b.take()
                if ok:
                    break
            b.load_ctl(COUNTER)
            c = yield b.take()
            b.store(COUNTER, c + 1)
            b.sync()
            b.store(LOCK, 0)
            yield b.take()
            for _ in range(6):
                b.alu(latency=2)
        b.end()
        yield b.take()

    return prog


def final_word(system, base, widx):
    """Read the architecturally-current value of a word."""
    for ctrl in system.controllers:
        line = ctrl.lookup(base)
        if line is not None and line.state.dirty:
            return line.data[widx]
    return system.memory.read_word(base, widx)


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_locked_counter_exact_under_technique(technique, tiny4_config):
    cfg = configure_technique(tiny4_config, technique)
    progs = [locked_counter(t) for t in range(4)]
    system = System(cfg, ScriptWorkload(*progs), seed=13)
    system.run(max_cycles=50_000_000, max_events=20_000_000)
    assert final_word(system, COUNTER, 0) == 4 * INCREMENTS
    assert final_word(system, LOCK, 0) == 0  # released


@pytest.mark.parametrize("technique", ["base", "emesti", "lvp", "emesti+lvp+sle"])
def test_atomic_counters_exact(technique, tiny4_config):
    """larx/stcx fetch-and-add from all threads sums exactly."""
    ATOMIC = 0x7000
    N = 10

    def adder(tid):
        def prog(_tid, config, rng):
            b = BlockBuilder()
            for _ in range(N):
                while True:
                    b.larx(ATOMIC, pc=0x20)
                    v = yield b.take()
                    b.stcx(ATOMIC, v + 1, pc=0x20, meta={"sle_fallback": ("add", 1)})
                    ok = yield b.take()
                    if ok:
                        break
                for _ in range(4):
                    b.alu(latency=2)
            b.end()
            yield b.take()

        return prog

    cfg = configure_technique(tiny4_config, technique)
    system = System(cfg, ScriptWorkload(*[adder(t) for t in range(4)]), seed=9)
    system.run(max_cycles=50_000_000, max_events=20_000_000)
    assert final_word(system, ATOMIC, 0) == 4 * N


@pytest.mark.parametrize("technique", ["base", "mesti", "emesti+lvp"])
def test_producer_consumer_handoff(technique, tiny_config):
    """Flag-guarded message passing delivers the payload exactly."""
    FLAG, DATA = 0x8000, 0x8100
    received = []

    def producer(tid, config, rng):
        b = BlockBuilder()
        for i in range(6):
            b.store(DATA + i * 8, 1000 + i)
        b.sync()
        b.store(FLAG, 1)
        b.end()
        yield b.take()

    def consumer(tid, config, rng):
        b = BlockBuilder()
        while True:
            b.load_ctl(FLAG)
            f = yield b.take()
            if f:
                break
            for _ in range(4):
                b.alu(latency=2)
        for i in range(6):
            b.load_ctl(DATA + i * 8)
            v = yield b.take()
            received.append(v)
        b.end()
        yield b.take()

    cfg = configure_technique(tiny_config, technique)
    received.clear()
    System(cfg, ScriptWorkload(producer, consumer), seed=2).run(
        max_cycles=10_000_000
    )
    assert received == [1000 + i for i in range(6)]
