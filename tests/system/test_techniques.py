"""Technique matrix configuration."""

import pytest

from repro.common.config import ProtocolKind, ValidatePolicy, scaled_config
from repro.common.errors import ConfigError
from repro.system.techniques import ALL_TECHNIQUES, configure_technique


@pytest.fixture
def base():
    return scaled_config()


def test_base_is_moesi(base):
    cfg = configure_technique(base, "base")
    assert cfg.protocol.kind is ProtocolKind.MOESI
    assert not cfg.lvp.enabled and not cfg.sle.enabled


def test_mesti_uses_always_validates(base):
    cfg = configure_technique(base, "mesti")
    assert cfg.protocol.kind is ProtocolKind.MOESTI
    assert not cfg.protocol.enhanced
    assert cfg.protocol.validate_policy is ValidatePolicy.ALWAYS


def test_emesti_uses_predictor(base):
    cfg = configure_technique(base, "emesti")
    assert cfg.protocol.enhanced
    assert cfg.protocol.validate_policy is ValidatePolicy.PREDICTOR


def test_lvp_and_sle_flags(base):
    assert configure_technique(base, "lvp").lvp.enabled
    assert configure_technique(base, "sle").sle.enabled


def test_combinations_compose(base):
    cfg = configure_technique(base, "emesti+lvp+sle")
    assert cfg.protocol.enhanced and cfg.lvp.enabled and cfg.sle.enabled


def test_order_insensitive(base):
    a = configure_technique(base, "lvp+emesti")
    b = configure_technique(base, "emesti+lvp")
    assert a == b


def test_mesti_emesti_exclusive(base):
    with pytest.raises(ConfigError):
        configure_technique(base, "mesti+emesti")


def test_unknown_component_rejected(base):
    with pytest.raises(ConfigError):
        configure_technique(base, "warp-drive")


def test_empty_rejected(base):
    with pytest.raises(ConfigError):
        configure_technique(base, "")


def test_all_techniques_are_valid(base):
    for technique in ALL_TECHNIQUES:
        configure_technique(base, technique).validate()


def test_case_insensitive(base):
    cfg = configure_technique(base, "EMESTI+LVP")
    assert cfg.protocol.enhanced and cfg.lvp.enabled
