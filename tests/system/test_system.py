"""System assembly and run loop."""

import dataclasses

import pytest

from repro.common.errors import DeadlockError
from repro.cpu.program import BlockBuilder
from repro.system.system import RunResult, System, run_workload
from tests.harness import ScriptWorkload


def trivial(tid, config, rng):
    b = BlockBuilder()
    for _ in range(5):
        b.alu()
    b.store(0x1000 + tid * 0x100, tid + 1)
    b.end()
    yield b.take()


class TestSystem:
    def test_builds_requested_processor_count(self, tiny4_config):
        sys_ = System(tiny4_config, ScriptWorkload(*([trivial] * 4)), seed=0)
        assert len(sys_.cores) == 4
        assert len(sys_.controllers) == 4
        assert sys_.bus.n_clients == 4

    def test_run_returns_result(self, tiny_config):
        res = run_workload(tiny_config, ScriptWorkload(trivial, trivial), seed=0)
        assert isinstance(res, RunResult)
        assert res.cycles > 0
        assert res.committed == 14  # 7 ops x 2 threads
        assert res.ipc > 0

    def test_program_count_mismatch_rejected(self, tiny_config):
        with pytest.raises(DeadlockError, match="programs"):
            System(tiny_config, ScriptWorkload(trivial), seed=0)

    def test_sle_engines_only_when_enabled(self, tiny_config):
        plain = System(tiny_config, ScriptWorkload(trivial, trivial), seed=0)
        assert not plain.engines
        sle = System(
            tiny_config.with_sle(enabled=True),
            ScriptWorkload(trivial, trivial), seed=0,
        )
        assert len(sle.engines) == 2

    def test_summary_counters_recorded(self, tiny_config):
        sys_ = System(tiny_config, ScriptWorkload(trivial, trivial), seed=0)
        res = sys_.run()
        assert res.stats["run.cycles"] == res.cycles
        assert res.stats["run.committed"] == res.committed
        assert res.stats["run.events"] > 0

    def test_stall_raises_deadlock_error(self, tiny_config):
        def stuck(tid, config, rng):
            b = BlockBuilder()
            while True:  # spin on a flag nobody sets
                b.load_ctl(0x4000)
                v = yield b.take()
                if v:
                    break
            b.end()
            yield b.take()

        sys_ = System(tiny_config, ScriptWorkload(stuck, trivial), seed=0)
        with pytest.raises(Exception):
            sys_.run(max_cycles=20_000)


class TestDeterminism:
    def test_same_seed_same_result(self, tiny4_config):
        from repro.workloads.registry import get_benchmark

        def once():
            wl = get_benchmark("radiosity", scale=0.02)
            return System(tiny4_config, wl, seed=42).run()

        a, b = once(), once()
        assert a.cycles == b.cycles
        assert a.committed == b.committed
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_different_seed_different_timing(self, tiny4_config):
        import dataclasses

        from repro.workloads.registry import get_benchmark

        cfg = dataclasses.replace(tiny4_config, latency_jitter=8)

        def once(seed):
            wl = get_benchmark("radiosity", scale=0.02)
            return System(cfg, wl, seed=seed).run()

        cycles = {once(seed).cycles for seed in (1, 2, 3)}
        assert len(cycles) > 1
