"""RunResult accessors."""

import pytest

from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    from repro.common.config import scaled_config

    cfg = configure_technique(scaled_config(), "mesti")
    return System(cfg, get_benchmark("radiosity", scale=0.03), seed=2).run()


def test_ipc(result):
    assert result.ipc == pytest.approx(result.committed / result.cycles)


def test_txn_accessors(result):
    total = (
        result.txn("read") + result.txn("readx") + result.txn("upgrade")
        + result.txn("validate") + result.txn("writeback")
    )
    assert total == result.address_transactions


def test_miss_classes_consistent(result):
    parts = (
        result.miss_class("cold")
        + result.miss_class("capacity")
        + result.miss_class("comm")
    )
    assert parts == result.miss_class("total")
    subs = (
        result.miss_class("comm.tss")
        + result.miss_class("comm.false")
        + result.miss_class("comm.true")
    )
    assert subs <= result.miss_class("comm")


def test_node_and_ctrl_sums(result):
    assert result.node_sum("stores.performed") > 0
    assert result.ctrl_sum("ts_stores") >= 0
    # Per-node sums never exceed... sanity: l1 hits happen.
    assert result.node_sum("l1.hits") > 0


def test_core_stat(result):
    assert result.core_stat(0, "commit.load") > 0
