"""Parallel matrix execution: determinism contract + cache robustness.

Covers the non-negotiables of the ``workers=N`` mode:

* a cell run in a worker process produces a summary identical to the
  same cell run serially (modulo the ``wall_seconds`` measurement);
* the cache file is fingerprinted by machine config, survives
  corruption, and merges concurrent flushes instead of clobbering.
"""

from __future__ import annotations

import dataclasses
import json
import logging
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.common.config import BusConfig, scaled_config
from repro.experiments.runner import (
    NONDETERMINISTIC_FIELDS,
    MatrixRunner,
    config_fingerprint,
    map_cells,
    run_cell,
    summaries_equal,
)

SCALE = 0.02


class TestDeterminism:
    def test_same_cell_twice_serial(self, tmp_path):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        first = runner.run_one("radiosity", "emesti", 1)
        again = runner.run_one("radiosity", "emesti", 1, force=True)
        assert summaries_equal(first, again)
        # Beyond the helper: every field except wall_seconds is
        # bit-identical, including the float-valued ones.
        for key in first:
            if key not in NONDETERMINISTIC_FIELDS:
                assert first[key] == again[key], key

    def test_serial_vs_process_pool_worker(self, tmp_path):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        config = runner.cell_config("emesti")
        serial = run_cell(config, "radiosity", SCALE, 1)
        with ProcessPoolExecutor(max_workers=1) as pool:
            worker = pool.submit(run_cell, config, "radiosity", SCALE, 1).result()
        assert summaries_equal(serial, worker)

    def test_run_matrix_workers_matches_serial(self, tmp_path):
        serial = MatrixRunner(
            scale=SCALE, results_dir=tmp_path / "serial", verbose=False
        ).run_matrix(benchmarks=["radiosity"], techniques=("base", "mesti"),
                     seeds=(1, 2))
        parallel = MatrixRunner(
            scale=SCALE, results_dir=tmp_path / "par", verbose=False
        ).run_matrix(benchmarks=["radiosity"], techniques=("base", "mesti"),
                     seeds=(1, 2), workers=2)
        # Deterministic result order: same keys in the same order.
        assert list(parallel) == list(serial)
        for key in serial:
            assert summaries_equal(serial[key], parallel[key]), key

    def test_workers_results_are_cached(self, tmp_path):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        runner.run_matrix(benchmarks=["radiosity"], techniques=("base",),
                          seeds=(1,), workers=2)
        cells = json.loads(runner._cache_path.read_text())["cells"]
        assert "radiosity|base|1" in cells

    def test_map_cells_serial_parallel_parity(self):
        config = scaled_config()
        jobs = [(config, "radiosity", SCALE, 1), (config, "radiosity", SCALE, 2)]
        serial = map_cells(jobs)
        parallel = map_cells(jobs, workers=2)
        assert len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert summaries_equal(a, b)


class TestManifest:
    def test_cell_summaries_carry_provenance(self, tmp_path):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        summary = runner.run_one("radiosity", "base", 1)
        assert summary["worker"] > 0  # the producing pid
        assert summary["retries"] == 0

    def test_run_matrix_writes_manifest(self, tmp_path):
        from repro.obs.progress import RunManifest

        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        runner.run_matrix(benchmarks=["radiosity"], techniques=("base",),
                          seeds=(1, 2), workers=2)
        assert runner.manifest_path.exists()
        manifest = RunManifest.load(runner.manifest_path)
        assert manifest == runner.manifest
        assert manifest.fingerprint == runner.fingerprint
        assert manifest.workers == 2
        assert set(manifest.cells) == {"radiosity|base|1", "radiosity|base|2"}
        assert manifest.ran == 2 and manifest.cached == 0
        for cell in manifest.cells.values():
            assert cell["worker"] > 0
            assert cell["wall_seconds"] >= 0

    def test_cached_rerun_is_marked_cached(self, tmp_path):
        from repro.obs.progress import RunManifest

        kwargs = dict(benchmarks=["radiosity"], techniques=("base",), seeds=(1,))
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        runner.run_matrix(**kwargs)
        runner.run_matrix(**kwargs)  # every cell now served from cache
        manifest = RunManifest.load(runner.manifest_path)
        assert manifest.ran == 0 and manifest.cached == 1


class TestRetry:
    def test_harvest_retries_once_on_failure(self, caplog):
        from repro.experiments.runner import _harvest

        class FailingFuture:
            def result(self, timeout=None):
                raise RuntimeError("worker died")

        retried = []
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            out = _harvest(
                FailingFuture(), lambda: retried.append(1) or {"cycles": 7},
                timeout=1.0, label="x|y|1",
            )
        # The retried summary is marked so the extra attempt is visible
        # in the cache.
        assert out == {"cycles": 7, "retries": 1}
        assert retried == [1]
        assert "retrying once" in caplog.text

    def test_harvest_second_failure_propagates(self):
        from repro.experiments.runner import _harvest

        class FailingFuture:
            def result(self, timeout=None):
                raise RuntimeError("worker died")

        def retry():
            raise RuntimeError("still dead")

        with pytest.raises(RuntimeError, match="still dead"):
            _harvest(FailingFuture(), retry, timeout=1.0, label="x|y|1")


class TestConfigFingerprint:
    def test_fingerprint_sensitive_to_config(self):
        base = scaled_config()
        custom = dataclasses.replace(base, bus=BusConfig(addr_latency=99))
        assert config_fingerprint(base) != config_fingerprint(custom)
        assert config_fingerprint(base) == config_fingerprint(scaled_config())

    def test_custom_config_does_not_reuse_default_cache(self, tmp_path, caplog):
        default = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        cached = default.run_one("radiosity", "base", 1)
        custom_config = dataclasses.replace(
            scaled_config(), bus=BusConfig(addr_latency=99, data_latency=200)
        )
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            custom = MatrixRunner(
                config=custom_config, scale=SCALE, results_dir=tmp_path,
                verbose=False,
            )
        assert "different machine config" in caplog.text
        assert custom._cache == {}  # must not adopt the mismatched cells
        fresh = custom.run_one("radiosity", "base", 1)
        assert not summaries_equal(cached, fresh)  # different bus timing
        # The mismatched file was moved aside, not destroyed.
        stale = default._cache_path.with_suffix(".stale")
        assert stale.exists()
        assert "radiosity|base|1" in json.loads(stale.read_text())["cells"]

    def test_legacy_flat_cache_adopted_with_warning(self, tmp_path, caplog):
        path = tmp_path / f"matrix_scale{SCALE}.json"
        legacy = {"radiosity|base|1": {"cycles": 123, "ipc": 1.0}}
        path.write_text(json.dumps(legacy))
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        assert "predates config fingerprints" in caplog.text
        assert runner.run_one("radiosity", "base", 1) == {"cycles": 123, "ipc": 1.0}
        # Flushing upgrades the file to the fingerprinted format.
        runner._dirty = True
        runner.flush()
        doc = json.loads(path.read_text())
        assert doc["fingerprint"] == runner.fingerprint
        assert "radiosity|base|1" in doc["cells"]


class TestCorruptCache:
    def test_truncated_cache_recovers(self, tmp_path, caplog):
        path = tmp_path / f"matrix_scale{SCALE}.json"
        path.write_text('{"cells": {"radiosity|base|1": {"cyc')  # interrupted
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        assert runner._cache == {}
        assert "corrupt" in caplog.text
        quarantine = path.with_suffix(".corrupt")
        assert quarantine.exists() and not path.exists()

    def test_non_object_root_recovers(self, tmp_path):
        path = tmp_path / f"matrix_scale{SCALE}.json"
        path.write_text("[1, 2, 3]")
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        assert runner._cache == {}

    def test_runner_still_usable_after_recovery(self, tmp_path):
        path = tmp_path / f"matrix_scale{SCALE}.json"
        path.write_text("not json at all")
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        summary = runner.run_one("radiosity", "base", 1)
        assert summary["cycles"] > 0
        assert "radiosity|base|1" in json.loads(path.read_text())["cells"]


class TestConcurrentFlush:
    def test_two_runners_sharing_a_cache_merge(self, tmp_path):
        # Both constructed before either flushes: the classic
        # last-writer-wins hazard.
        a = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        b = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        a.run_one("radiosity", "base", 1)  # a flushes {cell1}
        b.run_one("radiosity", "base", 2)  # b flushes {cell2} + merges cell1
        cells = json.loads(a._cache_path.read_text())["cells"]
        assert "radiosity|base|1" in cells
        assert "radiosity|base|2" in cells

    def test_flush_does_not_resurrect_mismatched_cells(self, tmp_path):
        a = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        a.run_one("radiosity", "base", 1)
        # Another process rewrites the file under a different config.
        doc = json.loads(a._cache_path.read_text())
        doc["fingerprint"] = "deadbeefdeadbeef"
        doc["cells"]["other|config|9"] = {"cycles": 1}
        a._cache_path.write_text(json.dumps(doc))
        a._cache["radiosity|base|3"] = {"cycles": 2}
        a._dirty = True
        a.flush()
        out = json.loads(a._cache_path.read_text())
        assert out["fingerprint"] == a.fingerprint
        assert "other|config|9" not in out["cells"]

    def test_no_lock_file_left_behind(self, tmp_path):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        runner.run_one("radiosity", "base", 1)
        assert not runner._cache_path.with_suffix(".lock").exists()

    def test_stale_lock_is_broken(self, tmp_path, caplog):
        runner = MatrixRunner(scale=SCALE, results_dir=tmp_path, verbose=False)
        runner._cache["fake|cell|1"] = {"cycles": 1}
        runner._dirty = True
        lock = runner._cache_path.with_suffix(".lock")
        tmp_path.mkdir(exist_ok=True)
        lock.write_text("12345")  # a holder that died
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            with runner._flush_lock(timeout=0.1):
                pass
        assert "breaking stale cache lock" in caplog.text
        runner.flush()
        assert "fake|cell|1" in json.loads(runner._cache_path.read_text())["cells"]
