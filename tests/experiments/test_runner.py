"""Matrix runner: summaries, caching, and the experiment harnesses."""

import json

import pytest

from repro.experiments.runner import MatrixRunner, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def small_result(tmp_path_factory):
    from repro.common.config import scaled_config

    cfg = configure_technique(scaled_config(), "emesti+lvp")
    wl = get_benchmark("radiosity", scale=0.03)
    return System(cfg, wl, seed=1).run()


class TestSummarize:
    def test_core_fields(self, small_result):
        s = summarize(small_result, wall_seconds=1.234)
        assert s["cycles"] == small_result.cycles
        assert s["committed"] == small_result.committed
        assert s["wall_seconds"] == 1.234
        assert s["ipc"] > 0

    def test_txn_fields_consistent(self, small_result):
        s = summarize(small_result)
        parts = (
            s["txn_read"] + s["txn_readx"] + s["txn_upgrade"]
            + s["txn_validate"] + s["txn_writeback"]
        )
        assert parts == pytest.approx(s["txn_total"])

    def test_op_mix_sums(self, small_result):
        s = summarize(small_result)
        total = s["loads"] + s["stores"] + s["larx"] + s["stcx"] + s["alu"]
        # END/SYNC/ISYNC ops make the committed count slightly larger.
        assert total <= s["committed"]
        assert total > 0.8 * s["committed"]

    def test_json_serializable(self, small_result):
        json.dumps(summarize(small_result))


class TestMatrixRunner:
    def test_cache_round_trip(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        first = runner.run_one("radiosity", "base", 1)
        # A second runner instance reads the persisted cache.
        runner2 = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        again = runner2.run_one("radiosity", "base", 1)
        assert first == again

    def test_force_rerun(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        a = runner.run_one("radiosity", "base", 1)
        b = runner.run_one("radiosity", "base", 1, force=True)
        assert a["cycles"] == b["cycles"]  # deterministic per seed

    def test_key_format(self):
        assert MatrixRunner.key("tpc-b", "emesti+lvp", 3) == "tpc-b|emesti+lvp|3"

    def test_cells_runs_all_seeds(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        cells = runner.cells("radiosity", "base", (1, 2))
        assert len(cells) == 2


class TestExperimentHarnesses:
    def test_table2_renders(self, tmp_path):
        from repro.experiments import table2

        out = table2.run(scale=0.02, seeds=(1,), results_dir=tmp_path, verbose=False)
        assert "Table 2" in out
        for name in ("ocean", "tpc-b", "specjbb"):
            assert name in out

    def test_figure7_renders(self, tmp_path):
        from repro.experiments import figure7

        out = figure7.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path,
            benchmarks=["radiosity"], techniques=("mesti",), verbose=False,
        )
        assert "Figure 7" in out and "radiosity" in out

    def test_figure8_renders(self, tmp_path):
        from repro.experiments import figure8

        out = figure8.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path,
            benchmarks=["radiosity"], verbose=False,
        )
        assert "Figure 8" in out and "Validate" in out

    def test_figure6_renders(self):
        from repro.experiments import figure6

        out = figure6.run(scale=0.02, seed=1, benchmarks=["radiosity"], verbose=False)
        assert "Figure 6" in out and "ideal" in out

    def test_sle_idioms_renders(self, tmp_path):
        from repro.experiments import sle_idioms

        out = sle_idioms.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path, verbose=False
        )
        assert "Candidates" in out


class TestHistogramSummaryFields:
    def test_distribution_fields_present(self, small_result):
        s = summarize(small_result)
        assert s["miss_latency_p95"] >= s["miss_latency_p50"] > 0
        assert s["miss_latency_p99"] >= s["miss_latency_p95"]
        assert s["miss_latency_mean"] > 0
        assert s["bus_queue_depth_p95"] >= s["bus_queue_depth_p50"] >= 0

    def test_existing_keys_unchanged(self, small_result):
        # The histogram fields are additive: every pre-existing summary
        # key keeps its exact name.
        s = summarize(small_result)
        for key in (
            "cycles", "committed", "ipc", "wall_seconds", "txn_total",
            "miss_total", "loads", "stores", "us_stores", "ts_stores",
            "validates_broadcast", "sle_attempts",
        ):
            assert key in s


class TestBatchedAtomicSave:
    def test_run_matrix_writes_once(self, tmp_path, monkeypatch):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        flushes = []
        real_flush = runner.flush
        monkeypatch.setattr(
            runner, "flush", lambda: (flushes.append(1), real_flush())
        )
        runner.run_matrix(
            benchmarks=["radiosity"], techniques=("base",), seeds=(1, 2, 3)
        )
        assert len(flushes) == 1  # one write for three cells
        cache = json.loads(runner._cache_path.read_text())
        assert len(cache["cells"]) == 3
        assert cache["fingerprint"] == runner.fingerprint

    def test_run_one_outside_batch_saves_immediately(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        runner.run_one("radiosity", "base", 1)
        assert runner._cache_path.exists()
        assert not runner._dirty

    def test_interrupted_batch_still_persists_completed_cells(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        with pytest.raises(RuntimeError):
            with runner._batch():
                runner.run_one("radiosity", "base", 1)
                raise RuntimeError("simulated crash mid-sweep")
        assert json.loads(runner._cache_path.read_text())["cells"]

    def test_flush_leaves_no_temp_files(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        runner.run_matrix(
            benchmarks=["radiosity"], techniques=("base",), seeds=(1,)
        )
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_context_manager_flushes(self, tmp_path):
        with MatrixRunner(
            scale=0.02, results_dir=tmp_path, verbose=False
        ) as runner:
            with runner._batch():
                runner.run_one("radiosity", "base", 1)
                # inner batch exits -> flush; dirty again after:
                runner._cache["fake|cell|0"] = {"cycles": 1}
                runner._dirty = True
        cache = json.loads(runner._cache_path.read_text())
        assert "fake|cell|0" in cache["cells"]

    def test_logging_progress(self, tmp_path, caplog):
        import logging

        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=True)
        with caplog.at_level(logging.INFO, logger="repro.runner"):
            runner.run_one("radiosity", "base", 1)
        assert "radiosity" in caplog.text and "ipc=" in caplog.text
