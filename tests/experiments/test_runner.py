"""Matrix runner: summaries, caching, and the experiment harnesses."""

import json

import pytest

from repro.experiments.runner import MatrixRunner, summarize
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def small_result(tmp_path_factory):
    from repro.common.config import scaled_config

    cfg = configure_technique(scaled_config(), "emesti+lvp")
    wl = get_benchmark("radiosity", scale=0.03)
    return System(cfg, wl, seed=1).run()


class TestSummarize:
    def test_core_fields(self, small_result):
        s = summarize(small_result, wall_seconds=1.234)
        assert s["cycles"] == small_result.cycles
        assert s["committed"] == small_result.committed
        assert s["wall_seconds"] == 1.234
        assert s["ipc"] > 0

    def test_txn_fields_consistent(self, small_result):
        s = summarize(small_result)
        parts = (
            s["txn_read"] + s["txn_readx"] + s["txn_upgrade"]
            + s["txn_validate"] + s["txn_writeback"]
        )
        assert parts == pytest.approx(s["txn_total"])

    def test_op_mix_sums(self, small_result):
        s = summarize(small_result)
        total = s["loads"] + s["stores"] + s["larx"] + s["stcx"] + s["alu"]
        # END/SYNC/ISYNC ops make the committed count slightly larger.
        assert total <= s["committed"]
        assert total > 0.8 * s["committed"]

    def test_json_serializable(self, small_result):
        json.dumps(summarize(small_result))


class TestMatrixRunner:
    def test_cache_round_trip(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        first = runner.run_one("radiosity", "base", 1)
        # A second runner instance reads the persisted cache.
        runner2 = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        again = runner2.run_one("radiosity", "base", 1)
        assert first == again

    def test_force_rerun(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        a = runner.run_one("radiosity", "base", 1)
        b = runner.run_one("radiosity", "base", 1, force=True)
        assert a["cycles"] == b["cycles"]  # deterministic per seed

    def test_key_format(self):
        assert MatrixRunner.key("tpc-b", "emesti+lvp", 3) == "tpc-b|emesti+lvp|3"

    def test_cells_runs_all_seeds(self, tmp_path):
        runner = MatrixRunner(scale=0.02, results_dir=tmp_path, verbose=False)
        cells = runner.cells("radiosity", "base", (1, 2))
        assert len(cells) == 2


class TestExperimentHarnesses:
    def test_table2_renders(self, tmp_path):
        from repro.experiments import table2

        out = table2.run(scale=0.02, seeds=(1,), results_dir=tmp_path, verbose=False)
        assert "Table 2" in out
        for name in ("ocean", "tpc-b", "specjbb"):
            assert name in out

    def test_figure7_renders(self, tmp_path):
        from repro.experiments import figure7

        out = figure7.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path,
            benchmarks=["radiosity"], techniques=("mesti",), verbose=False,
        )
        assert "Figure 7" in out and "radiosity" in out

    def test_figure8_renders(self, tmp_path):
        from repro.experiments import figure8

        out = figure8.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path,
            benchmarks=["radiosity"], verbose=False,
        )
        assert "Figure 8" in out and "Validate" in out

    def test_figure6_renders(self):
        from repro.experiments import figure6

        out = figure6.run(scale=0.02, seed=1, benchmarks=["radiosity"], verbose=False)
        assert "Figure 6" in out and "ideal" in out

    def test_sle_idioms_renders(self, tmp_path):
        from repro.experiments import sle_idioms

        out = sle_idioms.run(
            scale=0.02, seeds=(1,), results_dir=tmp_path, verbose=False
        )
        assert "Candidates" in out
