"""Figure rendering helpers (table + bar-chart forms)."""

import pytest

from repro.analysis.variability import ConfidenceInterval
from repro.experiments.figure7 import render, render_chart


@pytest.fixture
def results():
    ci = lambda m: ConfidenceInterval(mean=m, half_width=0.01, n=3)
    return {
        "tpc-b": {"mesti": ci(1.07), "emesti": ci(1.09)},
        "specjbb": {"mesti": ci(0.80), "emesti": ci(1.00)},
    }


def test_table_render(results):
    out = render(results)
    assert "Figure 7" in out
    assert "tpc-b" in out and "specjbb" in out
    assert "1.070±0.010" in out


def test_chart_render(results):
    out = render_chart(results)
    assert "tpc-b:" in out and "specjbb:" in out
    assert "(baseline)" in out
    assert "#" in out  # bars actually drawn
    # Bar length ordering reflects the data: specjbb/mesti shortest.
    lines = {l.strip().split()[0]: l for l in out.splitlines() if "|" in l}
    jbb_mesti = next(
        l for l in out.splitlines() if "mesti" in l and "0.800" in l
    )
    tpc_emesti = next(
        l for l in out.splitlines() if "emesti" in l and "1.090" in l
    )
    assert jbb_mesti.count("#") < tpc_emesti.count("#")
