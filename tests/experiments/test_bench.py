"""The ``repro-sim bench`` harness: report shape and determinism gate."""

from __future__ import annotations

import json

import pytest

from repro.experiments import bench


def test_scheduler_microbench_counts():
    out = bench.scheduler_microbench(n_events=2_000)
    assert out["events"] == 2_000
    assert out["events_per_sec"] > 0


def test_stats_microbench_counts():
    out = bench.stats_microbench(n_adds=2_000)
    assert out["adds"] == 2_000
    assert out["adds_per_sec"] > 0
    assert out["hist_records_per_sec"] > 0


def test_determinism_check_passes():
    out = bench.determinism_check(scale=0.02)
    assert out["ok"] is True
    assert out["mismatched_fields"] == []


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_matrix.json"
    report = bench.run(quick=True, workers=2, output=path, verbose=False)
    return report, path


def test_bench_report_written(quick_report):
    report, path = quick_report
    on_disk = json.loads(path.read_text())
    assert on_disk == report
    assert report["schema"] == 2
    assert report["quick"] is True


def test_bench_report_fields(quick_report):
    report, _ = quick_report
    assert report["scheduler"]["events_per_sec"] > 0
    assert report["stats"]["adds_per_sec"] > 0
    matrix = report["matrix"]
    assert matrix["serial_seconds"] > 0
    assert len(matrix["cells"]) == 2  # quick: radiosity x (base, emesti)
    for cell in matrix["cells"]:
        assert cell["wall_seconds"] >= 0
        assert cell["cycles"] > 0
    assert matrix["parallel_seconds"] is not None
    assert matrix["parallel_matches_serial"] is True
    assert report["determinism"]["ok"] is True


def test_bench_render_one_screen(quick_report):
    report, _ = quick_report
    text = bench.render(report)
    assert "determinism: ok" in text
    assert "events/s" in text
    assert "radiosity" in text


def test_render_reports_mismatch():
    report = {
        "cpu_count": 4,
        "scheduler": {"events_per_sec": 1},
        "stats": {"adds_per_sec": 1, "hist_records_per_sec": 1},
        "matrix": {"cells": [], "scale": 0.1, "serial_seconds": 0.0,
                   "parallel_seconds": None, "workers": None, "speedup": None},
        "determinism": {"ok": False, "mismatched_fields": ["cycles"]},
    }
    assert "MISMATCH" in bench.render(report)
