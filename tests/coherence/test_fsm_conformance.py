"""Exhaustive protocol-FSM conformance tables.

For each protocol, every (state, observed transaction, data source)
combination is checked against the expected next state — the
machine-checkable form of the paper's Figures 2 and 3.
"""

import pytest

from repro.common.config import ProtocolConfig, ProtocolKind, ValidatePolicy
from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.protocol import make_protocol
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine

I, S, E, M, O, T, VS = (
    LineState.I, LineState.S, LineState.E, LineState.M,
    LineState.O, LineState.T, LineState.VS,
)

#: (protocol kind, enhanced) -> {(state, txn, dirty_flush?) -> next state}
#: Only legal-to-observe combinations appear; illegal ones raise and are
#: tested separately in test_protocol_unit.
MESI_TABLE = {
    (M, TxnKind.READ, True): S,
    (E, TxnKind.READ, False): S,
    (S, TxnKind.READ, False): S,
    (I, TxnKind.READ, False): I,
    (M, TxnKind.READX, True): I,
    (E, TxnKind.READX, False): I,
    (S, TxnKind.READX, False): I,
    (I, TxnKind.READX, False): I,
    (S, TxnKind.UPGRADE, False): I,
    (I, TxnKind.UPGRADE, False): I,
    (S, TxnKind.WRITEBACK, False): S,
    (I, TxnKind.WRITEBACK, False): I,
}

MOESI_TABLE = dict(MESI_TABLE)
MOESI_TABLE.update({
    (M, TxnKind.READ, True): O,
    (O, TxnKind.READ, True): O,
    (O, TxnKind.READX, True): I,
    (O, TxnKind.UPGRADE, False): I,
})

MOESTI_TABLE = dict(MOESI_TABLE)
MOESTI_TABLE.update({
    # Valid copies save the last visible value on invalidation (Fig 2).
    (M, TxnKind.READX, True): T,
    (O, TxnKind.READX, True): T,
    (E, TxnKind.READX, False): T,
    (S, TxnKind.READX, False): T,
    (S, TxnKind.UPGRADE, False): T,
    (O, TxnKind.UPGRADE, False): T,
    # The saved copy's fate tracks visibility events.
    (T, TxnKind.READ, False): T,  # memory-sourced: still the visible value
    (T, TxnKind.READ, True): I,  # dirty flush published a new value
    (T, TxnKind.READX, False): T,
    (T, TxnKind.READX, True): I,
    (T, TxnKind.UPGRADE, False): T,  # upgrader held the same visible copy
    (T, TxnKind.WRITEBACK, False): I,  # conservative drop
    (T, TxnKind.VALIDATE, False): S,  # re-install (Fig 2)
    (I, TxnKind.VALIDATE, False): I,
    (S, TxnKind.VALIDATE, False): S,  # benign race
})

EMESTI_TABLE = dict(MOESTI_TABLE)
EMESTI_TABLE.update({
    (T, TxnKind.VALIDATE, False): VS,  # Fig 3: re-install as VS
    (VS, TxnKind.READ, False): VS,
    (VS, TxnKind.READX, False): T,  # MESTI behavior, shared withheld
    (VS, TxnKind.UPGRADE, False): T,
    (VS, TxnKind.VALIDATE, False): VS,
    (VS, TxnKind.WRITEBACK, False): VS,
})

CASES = []
for kind, enhanced, table in (
    (ProtocolKind.MESI, False, MESI_TABLE),
    (ProtocolKind.MOESI, False, MOESI_TABLE),
    (ProtocolKind.MOESTI, False, MOESTI_TABLE),
    (ProtocolKind.MOESTI, True, EMESTI_TABLE),
):
    for (state, txn, dirty), expected in table.items():
        label = f"{kind.value}{'-E' if enhanced else ''}:{state.value}-{txn.value}-{'flush' if dirty else 'mem'}"
        CASES.append(pytest.param(kind, enhanced, state, txn, dirty, expected, id=label))


@pytest.mark.parametrize("kind,enhanced,state,txn,dirty,expected", CASES)
def test_snoop_transition(kind, enhanced, state, txn, dirty, expected):
    cfg = ProtocolConfig(
        kind=kind, enhanced=enhanced,
        validate_policy=ValidatePolicy.PREDICTOR if enhanced else ValidatePolicy.ALWAYS,
    )
    protocol = make_protocol(cfg)
    line = CacheLine(8)
    line.base = 0x40
    line.state = state
    result = SnoopResult(dirty_owner=(0 if dirty else None))
    protocol.snoop_apply(line, txn, result)
    assert line.state is expected


#: Requester fill states: (txn, shared) -> state.
FILL_CASES = [
    (TxnKind.READ, False, E),
    (TxnKind.READ, True, S),
    (TxnKind.READX, False, M),
    (TxnKind.READX, True, M),
    (TxnKind.UPGRADE, False, M),
    (TxnKind.UPGRADE, True, M),
]


@pytest.mark.parametrize("kind", [ProtocolKind.MESI, ProtocolKind.MOESI, ProtocolKind.MOESTI])
@pytest.mark.parametrize("txn,shared,expected", FILL_CASES)
def test_fill_states(kind, txn, shared, expected):
    protocol = make_protocol(ProtocolConfig(kind=kind))
    assert protocol.fill_state(txn, SnoopResult(shared=shared)) is expected
