"""Directory interconnect edge cases: races, conversions, cancellation."""

import dataclasses

import pytest

from repro.common.config import InterconnectKind, ProtocolKind, ValidatePolicy
from repro.coherence.states import LineState
from tests.coherence.test_directory import DirectoryHarness

ADDR = 0x10000


def make(config, n=2, **proto):
    cfg = dataclasses.replace(
        config, n_procs=n, interconnect=InterconnectKind.DIRECTORY
    )
    if proto:
        cfg = cfg.with_protocol(**proto)
    return DirectoryHarness(cfg)


def test_racing_upgrades_convert(tiny_config):
    h = make(tiny_config)
    h.load(0, ADDR)
    h.load(1, ADDR)
    done = []
    h.nodes[0].store(ADDR, 1, 0, lambda: done.append(0))
    h.nodes[1].store(ADDR, 2, 0, lambda: done.append(1))
    h.drain()
    assert len(done) == 2
    assert h.stats["ctrl1.upgrade_converted_to_readx"] == 1
    assert h.load(0, ADDR)[1] == 2


def test_validate_cancelled_after_owner_loses_line(tiny_config):
    h = make(tiny_config, n=3, kind=ProtocolKind.MOESTI,
             validate_policy=ValidatePolicy.ALWAYS)
    h.store(0, ADDR, 0)
    h.load(1, ADDR)
    h.store(0, ADDR, 1)
    h.store(0, ADDR, 0)  # validate queued
    h.store(2, ADDR, 9)  # a write may serialize before the validate
    h.drain()
    # Whatever the interleaving, the coherent value is 9 everywhere.
    assert h.load(0, ADDR)[1] == 9
    assert h.load(1, ADDR)[1] == 9


def test_writeback_through_home(tiny_config):
    h = make(tiny_config)
    h.store(0, ADDR, 7)
    l2 = h.controllers[0].l2
    stride = l2.config.num_sets * 64
    for i in range(1, l2.config.ways + 1):
        h.load(0, ADDR + i * stride)
    assert h.memory.read_line(ADDR)[0] == 7
    assert h.stats["bus.txn.writeback"] >= 1


def test_reservation_semantics_over_directory(tiny_config):
    h = make(tiny_config)
    h.load(0, ADDR, reserve=True)
    h.store(1, ADDR, 5)  # precise invalidation reaches the reserver
    assert not h.stcx(0, ADDR, 1)
    h.load(0, ADDR, reserve=True)
    assert h.stcx(0, ADDR, 1)


def test_lvp_over_directory(tiny_config):
    cfg = dataclasses.replace(
        tiny_config.with_lvp(enabled=True), n_procs=2,
        interconnect=InterconnectKind.DIRECTORY,
    )
    h = DirectoryHarness(cfg)
    h.store(0, ADDR, 5)
    h.load(1, ADDR)
    h.store(0, ADDR + 8, 1)  # false sharing: word 0 unchanged
    status, value, op = h.load(1, ADDR)
    assert status == "spec" and value == 5
    h.drain()
    assert op.verified


def test_messages_counted(tiny_config):
    h = make(tiny_config)
    h.load(0, ADDR)
    assert h.stats["bus.messages"] >= 1
