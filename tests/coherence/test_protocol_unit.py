"""Direct protocol-FSM transition tests (Figures 2 and 3)."""

import pytest

from repro.common.config import ProtocolConfig, ProtocolKind, ValidatePolicy
from repro.common.errors import ProtocolError
from repro.coherence.messages import SnoopResult, TxnKind
from repro.coherence.protocol import make_protocol
from repro.coherence.states import LineState
from repro.memory.cache import CacheLine


def proto(kind, enhanced=False):
    cfg = ProtocolConfig(
        kind=kind, enhanced=enhanced,
        validate_policy=ValidatePolicy.PREDICTOR if enhanced else ValidatePolicy.ALWAYS,
    )
    return make_protocol(cfg)


def line_in(state, data=0):
    line = CacheLine(8)
    line.base = 0x100
    line.state = state
    line.data = [data] * 8
    return line


class TestFillStates:
    def test_read_fill(self):
        p = proto(ProtocolKind.MESI)
        assert p.fill_state(TxnKind.READ, SnoopResult(shared=False)) is LineState.E
        assert p.fill_state(TxnKind.READ, SnoopResult(shared=True)) is LineState.S

    def test_write_fills(self):
        p = proto(ProtocolKind.MOESI)
        assert p.fill_state(TxnKind.READX, SnoopResult()) is LineState.M
        assert p.fill_state(TxnKind.UPGRADE, SnoopResult()) is LineState.M

    def test_no_fill_for_validate(self):
        with pytest.raises(ProtocolError):
            proto(ProtocolKind.MOESTI).fill_state(TxnKind.VALIDATE, SnoopResult())


class TestReadSnoop:
    def test_mesi_m_flushes_to_s(self):
        p = proto(ProtocolKind.MESI)
        line = line_in(LineState.M, 7)
        p.snoop_apply(line, TxnKind.READ, SnoopResult(dirty_owner=0))
        assert line.state is LineState.S
        assert line.visible == [7] * 8

    def test_moesi_m_flushes_to_o(self):
        p = proto(ProtocolKind.MOESI)
        line = line_in(LineState.M)
        p.snoop_apply(line, TxnKind.READ, SnoopResult(dirty_owner=0))
        assert line.state is LineState.O

    def test_e_demotes_to_s(self):
        p = proto(ProtocolKind.MESI)
        line = line_in(LineState.E)
        p.snoop_apply(line, TxnKind.READ, SnoopResult())
        assert line.state is LineState.S

    def test_t_survives_memory_sourced_read(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.READ, SnoopResult(dirty_owner=None))
        assert line.state is LineState.T

    def test_t_dropped_by_dirty_flush(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.READ, SnoopResult(dirty_owner=2))
        assert line.state is LineState.I


class TestInvalidateSnoop:
    @pytest.mark.parametrize("state", [LineState.S, LineState.E, LineState.M, LineState.O])
    def test_temporal_protocol_saves_in_t(self, state):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(state, 9)
        p.snoop_apply(line, TxnKind.READX, SnoopResult())
        assert line.state is LineState.T
        assert line.data == [9] * 8  # the saved value

    def test_plain_protocol_drops_to_i(self):
        p = proto(ProtocolKind.MOESI)
        line = line_in(LineState.S)
        p.snoop_apply(line, TxnKind.UPGRADE, SnoopResult())
        assert line.state is LineState.I

    def test_t_survives_upgrade(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.UPGRADE, SnoopResult())
        assert line.state is LineState.T

    def test_t_dropped_by_readx_with_flush(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.READX, SnoopResult(dirty_owner=1))
        assert line.state is LineState.I

    def test_remote_m_on_upgrade_is_protocol_error(self):
        p = proto(ProtocolKind.MESI)
        with pytest.raises(ProtocolError):
            p.snoop_query(line_in(LineState.M), TxnKind.UPGRADE)


class TestValidateSnoop:
    def test_t_revalidates_to_s(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.VALIDATE, SnoopResult())
        assert line.state is LineState.S

    def test_enhanced_revalidates_to_vs(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.VALIDATE, SnoopResult())
        assert line.state is LineState.VS

    def test_i_stays_i(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.I)
        p.snoop_apply(line, TxnKind.VALIDATE, SnoopResult())
        assert line.state is LineState.I

    def test_m_receiving_validate_is_error(self):
        p = proto(ProtocolKind.MOESTI)
        with pytest.raises(ProtocolError):
            p.snoop_apply(line_in(LineState.M), TxnKind.VALIDATE, SnoopResult())

    def test_s_receiving_validate_is_benign(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.S)
        p.snoop_apply(line, TxnKind.VALIDATE, SnoopResult())
        assert line.state is LineState.S


class TestUsefulSnoopResponse:
    def test_vs_withholds_shared_on_invalidation(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        q = p.snoop_query(line_in(LineState.VS), TxnKind.UPGRADE)
        assert not q.assert_shared

    def test_vs_asserts_shared_on_read(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        q = p.snoop_query(line_in(LineState.VS), TxnKind.READ)
        assert q.assert_shared

    def test_s_asserts_shared_on_invalidation(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        q = p.snoop_query(line_in(LineState.S), TxnKind.UPGRADE)
        assert q.assert_shared

    def test_vs_demotes_on_local_access(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        line = line_in(LineState.VS)
        p.on_local_access(line)
        assert line.state is LineState.S

    def test_vs_enters_t_on_invalidation(self):
        p = proto(ProtocolKind.MOESTI, enhanced=True)
        line = line_in(LineState.VS, 5)
        p.snoop_apply(line, TxnKind.READX, SnoopResult())
        assert line.state is LineState.T
        assert line.data == [5] * 8


class TestWritebackSnoop:
    def test_t_dropped_by_remote_writeback(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.T)
        p.snoop_apply(line, TxnKind.WRITEBACK, SnoopResult())
        assert line.state is LineState.I

    def test_s_unaffected_by_writeback(self):
        p = proto(ProtocolKind.MOESTI)
        line = line_in(LineState.S)
        p.snoop_apply(line, TxnKind.WRITEBACK, SnoopResult())
        assert line.state is LineState.S


class TestValidateSemantics:
    def test_moesti_validates_to_owned(self):
        p = proto(ProtocolKind.MOESTI)
        assert p.post_validate_state() is LineState.O
        assert not p.validate_writes_back

    def test_mesti_validates_to_shared_with_writeback(self):
        p = proto(ProtocolKind.MESTI)
        assert p.post_validate_state() is LineState.S
        assert p.validate_writes_back
