"""Predictor storage lives in the L2 tags: it travels with the line."""

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


@pytest.fixture
def h(emesti_config):
    return MemHarness(emesti_config)


def force_evict(h, proc, addr):
    l2 = h.controllers[proc].l2
    stride = l2.config.num_sets * 64
    for i in range(1, l2.config.ways + 1):
        h.load(proc, addr + i * stride)


def test_confidence_lost_on_eviction(h):
    h.store(0, ADDR, 0)
    line = h.controllers[0].lookup(ADDR)
    line.pred_conf = 7  # fully trained
    force_evict(h, 0, ADDR)
    h.store(0, ADDR, 1)  # refetch
    line = h.controllers[0].lookup(ADDR)
    # Cold again: re-initialized to the configured initial confidence.
    assert line.pred_conf == h.config.protocol.predictor.initial_confidence


def test_confidence_cold_on_migration(h):
    """Ownership migration restarts prediction at the new owner —
    the effect behind our scaled predictor tuning (see scaled_config)."""
    h.store(0, ADDR, 0)
    h.controllers[0].lookup(ADDR).pred_conf = 7
    h.store(1, ADDR, 5)  # P1 takes ownership
    line1 = h.controllers[1].lookup(ADDR)
    assert line1.pred_conf == h.config.protocol.predictor.initial_confidence


def test_confidence_survives_t_state(h):
    """Losing the line to T (not eviction) keeps the predictor bits."""
    h.store(0, ADDR, 0)
    h.load(1, ADDR)
    line1 = h.controllers[1].lookup(ADDR)
    line1.pred_conf = 6
    h.store(0, ADDR, 1)  # P1 -> T
    assert h.line_state(1, ADDR) is LineState.T
    assert h.controllers[1].lookup(ADDR).pred_conf == 6
