"""MESTI/MOESTI temporal-silence behavior (paper §2, Figure 2)."""

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


@pytest.fixture
def h(mesti_config):
    return MemHarness(mesti_config)


class TestTState:
    def test_invalidation_enters_t_and_saves_value(self, h):
        h.store(0, ADDR, 5)
        h.load(1, ADDR)  # P1 shares the value 5
        h.store(0, ADDR, 6)  # upgrade invalidates P1
        line = h.controllers[1].lookup(ADDR)
        assert line.state is LineState.T
        assert line.data[0] == 5  # the last globally visible value

    def test_t_lines_do_not_hit(self, h):
        h.store(0, ADDR, 5)
        h.load(1, ADDR)
        h.store(0, ADDR, 6)
        kind, value, _ = h.load(1, ADDR, spec=False)
        assert kind == "miss"
        assert value == 6

    def test_temporally_silent_pair_validates_and_reinstalls(self, h):
        h.store(0, ADDR, 0)  # establish visible value 0
        h.load(1, ADDR)  # P1 caches it
        h.store(0, ADDR, 1)  # intermediate value store -> P1 in T
        assert h.line_state(1, ADDR) is LineState.T
        before = h.stats["bus.txn.validate"]
        h.store(0, ADDR, 0)  # reverting store: temporal silence
        h.drain()
        assert h.stats["bus.txn.validate"] == before + 1
        assert h.line_state(1, ADDR) is LineState.S
        kind, value, _ = h.load(1, ADDR)
        assert kind == "hit"  # the communication miss was eliminated
        assert value == 0

    def test_validating_owner_retires_to_owned(self, h):
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        h.drain()
        assert h.line_state(0, ADDR) is LineState.O  # MOESTI keeps dirty shared

    def test_ts_store_counted(self, h):
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        assert h.stats["ctrl0.ts_stores"] == 1

    def test_non_reverting_store_does_not_validate(self, h):
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 2)
        h.drain()
        assert h.stats["bus.txn.validate"] == 0
        assert h.line_state(1, ADDR) is LineState.T

    def test_partial_line_reversion_is_not_silence(self, h):
        h.store(0, ADDR, 0)
        h.store(0, ADDR + 8, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR + 8, 1)
        h.store(0, ADDR, 0)  # word 0 reverts, word 1 does not
        h.drain()
        assert h.stats["bus.txn.validate"] == 0


class TestTStateVersioning:
    def test_dirty_flush_drops_third_party_t_copy(self, tiny4_config, mesti_config):
        import dataclasses

        cfg = dataclasses.replace(mesti_config, n_procs=3)
        h = MemHarness(cfg)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)  # P1 -> T(0)
        assert h.line_state(1, ADDR) is LineState.T
        h.load(2, ADDR)  # P0 flushes 1: a NEW value became visible
        assert h.line_state(1, ADDR) is LineState.I

    def test_writeback_drops_t_copies(self, mesti_config):
        h = MemHarness(mesti_config)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        assert h.line_state(1, ADDR) is LineState.T
        # Force P0 to evict the dirty line.
        l2 = h.controllers[0].l2
        stride = l2.config.num_sets * 64
        for i in range(1, l2.config.ways + 1):
            h.load(0, ADDR + i * stride)
        assert h.line_state(1, ADDR) is LineState.I

    def test_upgrade_preserves_other_t_copies(self, tiny4_config, mesti_config):
        import dataclasses

        cfg = dataclasses.replace(mesti_config, n_procs=3)
        h = MemHarness(cfg)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.load(2, ADDR)
        h.store(0, ADDR, 1)  # both P1, P2 -> T(0) via upgrade
        assert h.line_state(1, ADDR) is LineState.T
        assert h.line_state(2, ADDR) is LineState.T
        h.store(0, ADDR, 0)  # revert: validate re-installs BOTH
        h.drain()
        assert h.line_state(1, ADDR) is LineState.S
        assert h.line_state(2, ADDR) is LineState.S

    def test_validate_eliminates_multiple_remote_misses(self, mesti_config):
        import dataclasses

        h = MemHarness(dataclasses.replace(mesti_config, n_procs=4))
        h.store(0, ADDR, 0)
        for p in (1, 2, 3):
            h.load(p, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        h.drain()
        reads_before = h.stats["bus.txn.read"]
        for p in (1, 2, 3):
            kind, value, _ = h.load(p, ADDR)
            assert kind == "hit" and value == 0
        assert h.stats["bus.txn.read"] == reads_before

    def test_lock_handoff_scenario(self, h):
        """The motivating idiom: acquire/release with no observer between."""
        lock = ADDR
        # P1 spins once while free, caching 0.
        assert h.load(1, lock)[1] == 0
        # P0 acquires and releases (P1 not looking).
        h.load(0, lock, reserve=True)
        assert h.stcx(0, lock, 1)
        assert h.line_state(1, lock) is LineState.T
        h.store(0, lock, 0)  # release: temporally silent
        h.drain()
        # P1's next acquire attempt hits locally: no communication miss.
        kind, value, _ = h.load(1, lock, reserve=True)
        assert kind == "hit" and value == 0
