"""The runtime coherence checker, and whole-benchmark audited runs."""

import dataclasses

import pytest

from repro.coherence.states import LineState
from repro.coherence.validation import CoherenceChecker
from repro.common.errors import ProtocolError
from repro.system.system import System
from repro.system.techniques import configure_technique
from repro.workloads.registry import get_benchmark


def audited_run(config, benchmark="radiosity", scale=0.03, seed=1):
    system = System(config, get_benchmark(benchmark, scale=scale), seed=seed)
    checker = CoherenceChecker(system)
    system.run(max_cycles=30_000_000, max_events=10_000_000)
    checker.check_all()
    return checker


@pytest.mark.parametrize(
    "technique", ["base", "mesti", "emesti", "lvp", "sle", "emesti+lvp+sle"]
)
def test_benchmark_run_upholds_invariants(technique, tiny4_config):
    cfg = configure_technique(tiny4_config, technique)
    checker = audited_run(cfg)
    assert checker.checks > 50  # the audit actually ran per grant


def test_directory_run_upholds_invariants(tiny4_config):
    from repro.common.config import InterconnectKind

    cfg = configure_technique(tiny4_config, "emesti")
    cfg = dataclasses.replace(cfg, interconnect=InterconnectKind.DIRECTORY)
    checker = audited_run(cfg, benchmark="tpc-b")
    assert checker.checks > 50


def test_checker_detects_planted_violation(tiny4_config):
    system = System(
        tiny4_config, get_benchmark("radiosity", scale=0.02), seed=1
    )
    checker = CoherenceChecker(system)
    system.run(max_cycles=30_000_000)
    # Plant a second writer for a resident line.
    victim = next(iter(system.controllers[0].l2.resident_lines()))
    line0 = victim
    line0.state = LineState.M
    other = system.controllers[1].l2.allocate(line0.base)[0] \
        if system.controllers[1].lookup(line0.base) is None \
        else system.controllers[1].lookup(line0.base)
    other.state = LineState.M
    with pytest.raises(ProtocolError):
        checker.check_line(line0.base)


def test_checker_detects_value_divergence(tiny4_config):
    system = System(
        tiny4_config, get_benchmark("radiosity", scale=0.02), seed=1
    )
    checker = CoherenceChecker(system)
    system.run(max_cycles=30_000_000)
    shared = None
    for ctrl in system.controllers:
        for line in ctrl.l2.resident_lines():
            if line.state is LineState.S:
                peers = [
                    c.lookup(line.base)
                    for c in system.controllers
                    if c.lookup(line.base) is not None
                    and c.lookup(line.base).state.valid
                ]
                if len(peers) > 1:
                    shared = line
                    break
        if shared:
            break
    if shared is None:
        pytest.skip("no multiply-shared line in this tiny run")
    shared.data[0] ^= 0xDEAD
    with pytest.raises(ProtocolError):
        checker.check_line(shared.base)


def test_check_all_sweeps_lines_in_sorted_base_order():
    """Regression (simlint SL002): the end-of-run sweep must audit lines
    in sorted-base order, not set hash order, so the first-reported
    violation is deterministic across PYTHONHASHSEED values."""

    class _StubLine:
        def __init__(self, base):
            self.base = base

    class _StubCache:
        def __init__(self, bases):
            self._bases = bases

        def resident_lines(self):
            return [_StubLine(b) for b in self._bases]

    class _StubCtrl:
        def __init__(self, bases):
            self.l2 = _StubCache(bases)

    class _StubSystem:
        # Bases deliberately inserted out of order and overlapping.
        controllers = [
            _StubCtrl([0x4C0, 0x100, 0x7F40]),
            _StubCtrl([0x100, 0x2300, 0x40]),
        ]

    checker = CoherenceChecker.__new__(CoherenceChecker)
    checker.system = _StubSystem()
    audited = []
    checker.check_line = audited.append
    checker.check_all()
    assert audited == [0x40, 0x100, 0x4C0, 0x2300, 0x7F40]
