"""MESI/MOESI behavior through the full memory system (2–4 nodes)."""

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness


ADDR = 0x10000


@pytest.fixture
def h2(tiny_config):
    return MemHarness(tiny_config)


@pytest.fixture
def h2_mesi(tiny_config):
    from repro.common.config import ProtocolKind

    return MemHarness(tiny_config.with_protocol(kind=ProtocolKind.MESI))


class TestMoesiBasics:
    def test_first_read_installs_exclusive(self, h2):
        kind, value, _ = h2.load(0, ADDR)
        assert kind == "miss"
        assert value == 0
        assert h2.line_state(0, ADDR) is LineState.E

    def test_second_reader_gets_shared_and_demotes_e(self, h2):
        h2.load(0, ADDR)
        h2.load(1, ADDR)
        assert h2.line_state(0, ADDR) is LineState.S
        assert h2.line_state(1, ADDR) is LineState.S

    def test_store_makes_modified(self, h2):
        h2.store(0, ADDR, 42)
        assert h2.line_state(0, ADDR) is LineState.M
        kind, value, _ = h2.load(0, ADDR)
        assert kind == "hit" and value == 42

    def test_store_to_exclusive_upgrades_silently(self, h2):
        h2.load(0, ADDR)  # E
        before = h2.stats["bus.txn.total"]
        h2.store(0, ADDR, 7)
        assert h2.stats["bus.txn.total"] == before  # E->M without bus
        assert h2.line_state(0, ADDR) is LineState.M

    def test_store_to_shared_issues_upgrade(self, h2):
        h2.load(0, ADDR)
        h2.load(1, ADDR)
        before = h2.stats["bus.txn.upgrade"]
        h2.store(0, ADDR, 7)
        assert h2.stats["bus.txn.upgrade"] == before + 1
        assert h2.line_state(1, ADDR) is LineState.I

    def test_dirty_read_flushes_and_owner_keeps_o(self, h2):
        h2.store(0, ADDR, 42)
        kind, value, _ = h2.load(1, ADDR)
        assert kind == "miss" and value == 42
        assert h2.line_state(0, ADDR) is LineState.O
        assert h2.line_state(1, ADDR) is LineState.S
        assert h2.stats["bus.txn.cache_to_cache"] == 1

    def test_communication_value_propagates(self, h2):
        h2.store(0, ADDR, 1)
        h2.store(1, ADDR, 2)
        kind, value, _ = h2.load(0, ADDR)
        assert value == 2

    def test_mesi_dirty_read_writes_back_to_memory(self, h2_mesi):
        h2_mesi.store(0, ADDR, 42)
        h2_mesi.load(1, ADDR)
        assert h2_mesi.line_state(0, ADDR) is LineState.S
        assert h2_mesi.memory.read_line(ADDR)[0] == 42

    def test_word_granularity(self, h2):
        h2.store(0, ADDR, 1)
        h2.store(0, ADDR + 8, 2)
        assert h2.load(1, ADDR + 8)[1] == 2
        assert h2.load(1, ADDR)[1] == 1

    def test_update_silent_store_counted(self, h2):
        h2.store(0, ADDR, 5)
        h2.store(0, ADDR, 5)
        assert h2.stats["node0.stores.update_silent"] == 1

    def test_silent_store_squashing_avoids_upgrade(self, tiny_config):
        h = MemHarness(tiny_config.with_protocol(squash_silent_stores=True))
        h.store(0, ADDR, 5)
        h.load(1, ADDR)  # both shared now
        before = h.stats["bus.txn.upgrade"]
        h.store(0, ADDR, 5)  # silent: no ownership needed
        assert h.stats["bus.txn.upgrade"] == before
        assert h.line_state(1, ADDR) is LineState.S
        assert h.stats["node0.stores.silent_squashed"] == 1


class TestEvictionsAndWritebacks:
    def test_dirty_eviction_reaches_memory(self, tiny_config):
        h = MemHarness(tiny_config)
        h.store(0, ADDR, 99)
        # Walk enough lines in the same set to force eviction.
        l2 = h.controllers[0].l2
        set_stride = l2.config.num_sets * 64
        for i in range(1, l2.config.ways + 1):
            h.load(0, ADDR + i * set_stride)
        assert h.line_state(0, ADDR) is None
        assert h.memory.read_line(ADDR)[0] == 99
        assert h.stats["bus.txn.writeback"] >= 1

    def test_inclusion_l1_dropped_on_l2_eviction(self, tiny_config):
        h = MemHarness(tiny_config)
        h.store(0, ADDR, 1)
        assert h.nodes[0].l1.lookup(ADDR) is not None
        l2 = h.controllers[0].l2
        set_stride = l2.config.num_sets * 64
        for i in range(1, l2.config.ways + 1):
            h.load(0, ADDR + i * set_stride)
        assert h.nodes[0].l1.lookup(ADDR) is None


class TestReservations:
    def test_stcx_succeeds_after_larx(self, h2):
        kind, value, _ = h2.load(0, ADDR, reserve=True)
        assert value == 0
        assert h2.stcx(0, ADDR, 1)
        assert h2.load(0, ADDR)[1] == 1

    def test_stcx_without_reservation_fails(self, h2):
        assert not h2.stcx(0, ADDR, 1)

    def test_remote_store_breaks_reservation(self, h2):
        h2.load(0, ADDR, reserve=True)
        h2.store(1, ADDR, 7)
        assert not h2.stcx(0, ADDR, 1)
        assert h2.load(1, ADDR)[1] == 7  # failed stcx wrote nothing

    def test_remote_load_keeps_reservation(self, h2):
        h2.load(0, ADDR, reserve=True)
        h2.load(1, ADDR)
        assert h2.stcx(0, ADDR, 1)

    def test_contended_stcx_exactly_one_winner(self, tiny4_config):
        h = MemHarness(tiny4_config)
        ops = []
        for p in range(4):
            op = h.new_op()
            h.nodes[p].load(ADDR, op, reserve=True, allow_spec=False)
            ops.append(op)
        h.drain()
        results = [[] for _ in range(4)]
        for p in range(4):
            latency = h.nodes[p].stcx(ADDR, p + 1, 0, results[p].append)
            assert latency is None or results[p]
        h.drain()
        wins = [r[0] for r in results if r]
        assert sum(wins) == 1  # exactly one success
        winner = wins.index(True) if True in wins else None
        final = h.load(0, ADDR)[1]
        assert final in (1, 2, 3, 4)
