"""Useful-validate predictor state machine in isolation (Figure 4B)."""

import pytest

from repro.common.config import PredictorConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatsRegistry
from repro.coherence.predictor import UsefulValidatePredictor
from repro.memory.cache import (
    PRED_START,
    PRED_TS_DETECTED,
    PRED_UPGRADE_WAIT,
    CacheLine,
)


@pytest.fixture
def pred():
    stats = StatsRegistry()
    return UsefulValidatePredictor(PredictorConfig(), stats.scoped("p")), stats


def line_with(pred, conf=None):
    line = CacheLine(8)
    line.base = 0
    pred.init_line(line)
    if conf is not None:
        line.pred_conf = conf
    return line


def test_init_line_sets_initial_confidence(pred):
    p, _ = pred
    line = line_with(p)
    assert line.pred_conf == 3
    assert line.pred_state == PRED_START


def test_ts_detect_reads_confidence_and_moves_to_detected(pred):
    p, _ = pred
    low = line_with(p, conf=3)
    assert p.on_ts_detect(low) is False
    assert low.pred_state == PRED_TS_DETECTED
    high = line_with(p, conf=4)
    assert p.on_ts_detect(high) is True
    assert high.pred_state == PRED_TS_DETECTED


def test_external_request_increments_and_resets(pred):
    p, _ = pred
    line = line_with(p, conf=3)
    p.on_ts_detect(line)
    p.on_external_request(line)
    assert line.pred_conf == 4
    assert line.pred_state == PRED_START


def test_external_request_ignored_outside_detected(pred):
    p, _ = pred
    line = line_with(p, conf=3)
    p.on_external_request(line)
    assert line.pred_conf == 3


def test_upgrade_path_useful_increments(pred):
    p, _ = pred
    line = line_with(p, conf=4)
    p.on_ts_detect(line)
    p.on_intermediate_store_upgrade(line)
    assert line.pred_state == PRED_UPGRADE_WAIT
    p.on_upgrade_response(line, useful=True)
    assert line.pred_conf == 5
    assert line.pred_state == PRED_START


def test_upgrade_path_useless_decrements(pred):
    p, _ = pred
    line = line_with(p, conf=4)
    p.on_ts_detect(line)
    p.on_intermediate_store_upgrade(line)
    p.on_upgrade_response(line, useful=False)
    assert line.pred_conf == 3


def test_upgrade_response_ignored_when_not_waiting(pred):
    p, _ = pred
    line = line_with(p, conf=4)
    p.on_upgrade_response(line, useful=True)
    assert line.pred_conf == 4


def test_exclusive_intermediate_store_returns_to_start(pred):
    p, _ = pred
    line = line_with(p, conf=2)
    p.on_ts_detect(line)  # suppressed
    p.on_intermediate_store_exclusive(line)
    assert line.pred_state == PRED_START
    assert line.pred_conf == 2  # no snoop response available: unchanged


def test_confidence_saturates_at_seven(pred):
    p, _ = pred
    line = line_with(p, conf=7)
    p.on_ts_detect(line)
    p.on_external_request(line)
    assert line.pred_conf == 7


def test_confidence_floors_at_zero(pred):
    p, _ = pred
    line = line_with(p, conf=0)
    p.on_ts_detect(line)
    p.on_intermediate_store_upgrade(line)
    p.on_upgrade_response(line, useful=False)
    assert line.pred_conf == 0


def test_invalid_tuning_rejected():
    stats = StatsRegistry()
    with pytest.raises(ConfigError):
        UsefulValidatePredictor(
            PredictorConfig(initial_confidence=9, saturation=7), stats.scoped("p")
        )


def test_stats_recorded(pred):
    p, stats = pred
    line = line_with(p, conf=4)
    p.on_ts_detect(line)
    assert stats["p.ts_detects"] == 1
    assert stats["p.validates_sent"] == 1
    low = line_with(p, conf=0)
    p.on_ts_detect(low)
    assert stats["p.validates_suppressed"] == 1
