"""Directory-based interconnect (§6 future-work variant)."""

import dataclasses

import pytest

from repro.common.config import InterconnectKind, ProtocolKind, ValidatePolicy
from repro.coherence.directory import DirectoryNetwork
from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


def dir_harness(config, **proto):
    cfg = dataclasses.replace(config, interconnect=InterconnectKind.DIRECTORY)
    if proto:
        cfg = cfg.with_protocol(**proto)
    h = DirectoryHarness(cfg)
    return h


class DirectoryHarness(MemHarness):
    """MemHarness wired over a DirectoryNetwork."""

    def __init__(self, config):
        # Rebuild like MemHarness but with the directory interconnect.
        from repro.common.events import Scheduler
        from repro.common.stats import StatsRegistry
        from repro.coherence.controller import CoherenceController
        from repro.memory.hierarchy import NodeMemory
        from repro.memory.mainmem import MainMemory
        from tests.harness import FakeCore

        config.validate()
        self.config = config
        self.scheduler = Scheduler()
        self.stats = StatsRegistry()
        self.memory = MainMemory(config.line_size)
        self.bus = DirectoryNetwork(
            self.scheduler, config.bus, self.memory, self.stats.scoped("bus")
        )
        self.controllers = []
        self.nodes = []
        self.cores = []
        self._seq = 0
        for i in range(config.n_procs):
            ctrl = CoherenceController(
                i, config, self.bus, self.memory, self.stats.scoped(f"ctrl{i}")
            )
            node = NodeMemory(
                i, config, self.scheduler, ctrl, self.stats.scoped(f"node{i}")
            )
            core = FakeCore()
            node.core = core
            self.controllers.append(ctrl)
            self.nodes.append(node)
            self.cores.append(core)


@pytest.fixture
def h(tiny_config):
    return dir_harness(dataclasses.replace(tiny_config, n_procs=3))


@pytest.fixture
def hm(tiny_config):
    return dir_harness(
        dataclasses.replace(tiny_config, n_procs=3),
        kind=ProtocolKind.MOESTI, validate_policy=ValidatePolicy.ALWAYS,
    )


class TestBasicCoherence:
    def test_read_write_round_trip(self, h):
        h.store(0, ADDR, 42)
        assert h.load(1, ADDR)[1] == 42
        h.store(1, ADDR, 7)
        assert h.load(0, ADDR)[1] == 7

    def test_invalidations_are_precise(self, h):
        h.load(0, ADDR)
        h.load(1, ADDR)
        # P2 never touched the line: the home must not message it.
        msgs_before = h.stats["bus.messages"]
        h.store(0, ADDR, 1)
        # Upgrade contacted exactly one sharer (P1), plus the request.
        assert h.stats["bus.messages"] - msgs_before == 2
        assert h.line_state(1, ADDR) is LineState.I

    def test_dirty_forwarding(self, h):
        h.store(0, ADDR, 9)
        kind, value, _ = h.load(1, ADDR)
        assert value == 9
        assert h.stats["bus.txn.cache_to_cache"] == 1

    def test_exclusive_then_silent_upgrade(self, h):
        h.load(0, ADDR)
        assert h.line_state(0, ADDR) is LineState.E
        before = h.stats["bus.txn.total"]
        h.store(0, ADDR, 3)
        assert h.stats["bus.txn.total"] == before  # E->M without messages

    def test_indirection_costs_latency(self, tiny_config):
        bus_h = MemHarness(tiny_config)
        dir_h = dir_harness(tiny_config)
        for harness in (bus_h, dir_h):
            harness.load(0, ADDR)
        # Compare completion times via the scheduler clock after one
        # cold read each: the directory pays the home hop.
        assert dir_h.scheduler.now > bus_h.scheduler.now


class TestMestiOverDirectory:
    def test_validate_multicasts_to_t_sharers(self, hm):
        hm.store(0, ADDR, 0)
        hm.load(1, ADDR)
        hm.store(0, ADDR, 1)  # P1 -> T, tracked by the home
        assert hm.line_state(1, ADDR) is LineState.T
        msgs_before = hm.stats["bus.messages"]
        hm.store(0, ADDR, 0)  # temporal silence -> validate
        hm.drain()
        # Validate contacted exactly the one T-sharer.
        assert hm.stats["bus.txn.validate"] == 1
        assert hm.line_state(1, ADDR) is LineState.S
        kind, value, _ = hm.load(1, ADDR)
        assert kind == "hit" and value == 0

    def test_untracked_nodes_not_validated(self, hm):
        hm.store(0, ADDR, 0)
        hm.load(1, ADDR)
        hm.store(0, ADDR, 1)
        msgs_before = hm.stats["bus.messages"]
        hm.store(0, ADDR, 0)
        hm.drain()
        # request + one T-sharer = 2 messages for the validate.
        validate_msgs = hm.stats["bus.messages"] - msgs_before
        assert validate_msgs == 2

    def test_dirty_read_stops_t_tracking(self, hm):
        hm.store(0, ADDR, 0)
        hm.load(1, ADDR)
        hm.store(0, ADDR, 1)  # P1 -> T(0)
        hm.load(2, ADDR)  # dirty flush: v1 became visible
        hm.store(2, ADDR, 5)
        hm.store(2, ADDR, 1)  # P2 reverts to ITS visible value (1)
        hm.drain()
        # P1's T(0) copy must never be re-installed: it is untracked.
        assert hm.line_state(1, ADDR) in (LineState.T, LineState.I)
        kind, value, _ = hm.load(1, ADDR, spec=False)
        assert value == 1  # coherent value, via a real miss

    def test_useful_snoop_response_computable_at_home(self, tiny_config):
        cfg = dataclasses.replace(tiny_config, n_procs=3)
        h = dir_harness(
            cfg, kind=ProtocolKind.MOESTI, enhanced=True,
            validate_policy=ValidatePolicy.PREDICTOR,
        )
        # Train up and validate (scaled default predictor validates cold
        # only if initial >= threshold; tiny config uses 3-4: train).
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        h.drain()
        h.load(1, ADDR)  # external request trains +1 (or consumes VS)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        h.drain()
        assert h.stats["bus.txn.validate"] >= 1
        assert h.line_state(1, ADDR) in (LineState.VS, LineState.S)


class TestValueCorrectnessOverDirectory:
    def test_property_style_mixed_traffic(self, tiny_config):
        import random

        cfg = dataclasses.replace(tiny_config, n_procs=3).with_protocol(
            kind=ProtocolKind.MOESTI, validate_policy=ValidatePolicy.ALWAYS
        )
        h = dir_harness(cfg, kind=ProtocolKind.MOESTI,
                        validate_policy=ValidatePolicy.ALWAYS)
        rng = random.Random(7)
        shadow = {}
        lines = [ADDR, ADDR + 64, ADDR + 128]
        for _ in range(120):
            proc = rng.randrange(3)
            base = rng.choice(lines)
            widx = rng.choice((0, 3))
            addr = base + widx * 8
            if rng.random() < 0.5:
                value = rng.randrange(4)
                h.store(proc, addr, value)
                shadow[addr] = value
            else:
                _, observed, _ = h.load(proc, addr, spec=False)
                assert observed == shadow.get(addr, 0), hex(addr)
            h.drain()
