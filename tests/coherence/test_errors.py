"""Error hierarchy and defensive protocol checks."""

import pytest

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.coherence.messages import BusTransaction, TxnKind


def test_hierarchy():
    assert issubclass(ConfigError, ReproError)
    assert issubclass(SimulationError, ReproError)
    assert issubclass(ProtocolError, SimulationError)
    assert issubclass(DeadlockError, SimulationError)


def test_supply_data_without_dirty_copy_rejected(tiny_config):
    from tests.harness import MemHarness

    h = MemHarness(tiny_config)
    h.load(0, 0x1000)  # E, clean
    txn = BusTransaction(TxnKind.READ, 0x1000, requester=1)
    h.controllers[0].l2.lookup(0x1000).dirty_mask = 0
    # E is not dirty: the controller must refuse to supply.
    from repro.coherence.states import LineState

    assert h.controllers[0].lookup(0x1000).state is LineState.E
    with pytest.raises(ProtocolError):
        h.controllers[0].supply_data(txn)


def test_supply_data_for_absent_line_rejected(tiny_config):
    from tests.harness import MemHarness

    h = MemHarness(tiny_config)
    txn = BusTransaction(TxnKind.READ, 0x2000, requester=1)
    with pytest.raises(ProtocolError):
        h.controllers[0].supply_data(txn)


def test_txn_repr_readable():
    txn = BusTransaction(TxnKind.READX, 0x1040, requester=2)
    text = repr(txn)
    assert "ReadX" in text and "P2" in text


def test_grant_write_without_ownership_rejected(tiny_config):
    from tests.harness import MemHarness

    h = MemHarness(tiny_config)
    with pytest.raises(SimulationError):
        h.nodes[0]._grant_write(0x3000, 0, 1)
