"""Enhanced MESTI: Validate_Shared, useful snoop response, predictor (§2.3–2.4)."""

import dataclasses

import pytest

from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


@pytest.fixture
def h(emesti_config):
    return MemHarness(emesti_config)


def make_ts_episode(h, owner=0, sharer=1, addr=ADDR):
    """Owner establishes visible 0, sharer caches it, owner writes 1 then 0."""
    h.store(owner, addr, 0)
    h.load(sharer, addr)
    h.store(owner, addr, 1)
    h.store(owner, addr, 0)
    h.drain()


def train_then_episode(h, owner=0, sharer=1, addr=ADDR):
    """Raise the line's confidence past the threshold, then run a TS
    episode whose validate is actually broadcast.

    With the paper's 3-4-1-1-7 tuning a cold line starts *below* the
    threshold, so the first detection suppresses; an external request
    during the temporally-silent episode (the remote's miss) trains
    confidence up by one, after which validates flow.
    """
    make_ts_episode(h, owner, sharer, addr)  # detection, suppressed (conf 3)
    h.load(sharer, addr)  # external request while TS-detected: conf -> 4
    h.store(owner, addr, 1)
    h.store(owner, addr, 0)  # detection, conf 4 >= threshold: validate
    h.drain()


class TestValidateShared:
    def test_cold_line_suppresses_first_validate(self, h):
        make_ts_episode(h)
        assert h.stats["bus.txn.validate"] == 0
        assert h.line_state(1, ADDR) is LineState.T

    def test_validate_installs_vs_not_s(self, h):
        train_then_episode(h)
        assert h.line_state(1, ADDR) is LineState.VS

    def test_local_access_demotes_vs_to_s(self, h):
        train_then_episode(h)
        kind, value, _ = h.load(1, ADDR)
        assert kind == "hit" and value == 0
        assert h.line_state(1, ADDR) is LineState.S

    def test_vs_withholds_shared_on_upgrade(self, h):
        """The useful snoop response: untouched VS looks un-shared."""
        train_then_episode(h)
        # P0 (in O after validating) upgrades for the next store: the
        # only remote copy is VS and must NOT assert shared.
        h.store(0, ADDR, 2)
        # The predictor saw "useless": decremented confidence.
        assert h.stats["ctrl0.predictor.useless_by_snoop_response"] == 1

    def test_consumed_vs_asserts_shared(self, h):
        train_then_episode(h)
        h.load(1, ADDR)  # demotes VS -> S: the validate was useful
        h.store(0, ADDR, 2)
        assert h.stats["ctrl0.predictor.useful_by_snoop_response"] == 1

    def test_vs_line_enters_t_on_invalidate(self, h):
        train_then_episode(h)
        h.store(0, ADDR, 2)  # upgrade invalidates the VS copy
        assert h.line_state(1, ADDR) is LineState.T


class TestUsefulValidatePredictor:
    def test_initial_confidence_sends_validates(self, h):
        # 3-4-1-1-7 tuning: initial 3 < threshold 4... the FIRST
        # detection reads confidence 3 and suppresses.
        make_ts_episode(h)
        # With initial confidence 3 below threshold 4, plain E-MESTI
        # suppresses until usefulness is observed.
        assert h.stats["ctrl0.predictor.ts_detects"] >= 1

    def test_external_request_trains_up(self, h):
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        for _ in range(3):
            # TS episodes where the remote genuinely misses afterwards.
            h.store(0, ADDR, 1)
            h.store(0, ADDR, 0)
            h.drain()
            h.load(1, ADDR)  # external request (or hit once validated)
        # Confidence must have risen to/above threshold and validates flow.
        line = h.controllers[0].lookup(ADDR)
        assert line.pred_conf >= 4 or h.stats["bus.txn.validate"] >= 1

    def test_useless_validates_eventually_suppressed(self, h):
        """The specjbb scenario: nobody consumes the validated data."""
        h.store(0, ADDR, 0)
        h.load(1, ADDR)  # one remote copy exists, then never touched again
        sent = []
        for i in range(12):
            h.store(0, ADDR, 1)
            h.store(0, ADDR, 0)
            h.drain()
            sent.append(h.stats["bus.txn.validate"])
        # Validates stop growing once the predictor learns.
        assert sent[-1] == sent[-2] == sent[-3]
        assert h.stats["ctrl0.predictor.validates_suppressed"] > 0

    def test_predictor_storage_lives_in_l2_tags(self, h):
        h.store(0, ADDR, 0)
        line = h.controllers[0].lookup(ADDR)
        assert hasattr(line, "pred_conf") and hasattr(line, "pred_state")
        assert line.pred_conf == 3  # initial confidence


class TestSnoopAwarePolicy:
    @pytest.fixture
    def hs(self, mesti_config):
        from repro.common.config import ValidatePolicy

        cfg = mesti_config.with_protocol(validate_policy=ValidatePolicy.SNOOP_AWARE)
        return MemHarness(cfg)

    def test_validate_sent_when_remote_copies_existed(self, hs):
        make_ts_episode(hs)
        assert hs.stats["bus.txn.validate"] == 1
        assert hs.line_state(1, ADDR) is LineState.S  # plain MESTI re-install

    def test_validate_aborted_when_no_remote_copy(self, hs):
        # P0 alone: the upgrade/readx collects no shared response.
        hs.store(0, ADDR, 0)
        hs.store(0, ADDR, 1)
        hs.store(0, ADDR, 0)
        hs.drain()
        assert hs.stats["bus.txn.validate"] == 0

    def test_no_opportunity_lost(self, hs):
        """Snoop-aware never suppresses a validate that could help."""
        make_ts_episode(hs)  # remote existed -> validate sent
        kind, _, _ = hs.load(1, ADDR)
        assert kind == "hit"
