"""Bus arbitration, occupancy, and timing."""

import pytest

from repro.common.config import BusConfig
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.coherence.bus import SnoopBus
from repro.coherence.messages import BusTransaction, TxnKind
from repro.coherence.protocol import SnoopQuery
from repro.memory.mainmem import MainMemory


class _StubClient:
    def __init__(self, node_id):
        self.node_id = node_id
        self.applied = []

    def pre_grant(self, txn):
        return True

    def on_grant(self, txn, data):
        pass

    def snoop_query(self, txn):
        return SnoopQuery()

    def snoop_apply(self, txn):
        self.applied.append(txn)

    def supply_data(self, txn):  # pragma: no cover - not exercised
        return [0] * 8


def make_bus(**kw):
    sched = Scheduler()
    stats = StatsRegistry()
    mem = MainMemory(64)
    bus = SnoopBus(sched, BusConfig(**kw), mem, stats.scoped("bus"))
    clients = [_StubClient(0), _StubClient(1)]
    for c in clients:
        bus.attach(c)
    return sched, bus, clients, stats, mem


def test_requester_not_snooped():
    sched, bus, clients, stats, _ = make_bus()
    txn = BusTransaction(TxnKind.READ, 0x40, requester=0)
    bus.request(txn)
    sched.run()
    assert clients[1].applied == [txn]
    assert clients[0].applied == []


def test_address_bus_occupancy_serializes_grants():
    sched, bus, clients, stats, _ = make_bus(addr_occupancy=20)
    grants = []
    for i in range(3):
        txn = BusTransaction(TxnKind.UPGRADE, 0x40 * (i + 1), requester=0)
        bus.request(txn, lambda t, d: grants.append(t.grant_time))
    sched.run()
    assert grants == [0, 20, 40]


def test_dataless_completion_at_addr_latency():
    sched, bus, clients, stats, _ = make_bus(addr_latency=200)
    done = []
    txn = BusTransaction(TxnKind.UPGRADE, 0x40, requester=0)
    bus.request(txn, lambda t, d: done.append(sched.now))
    sched.run()
    assert done == [200]


def test_read_completion_includes_data_latency():
    sched, bus, clients, stats, mem = make_bus(addr_latency=200, data_latency=400)
    mem.write_line(0x40, [7] * 8)
    got = []
    txn = BusTransaction(TxnKind.READ, 0x40, requester=0)
    bus.request(txn, lambda t, d: got.append((sched.now, d)))
    sched.run()
    assert got[0][0] == 400
    assert got[0][1] == [7] * 8


def test_data_network_occupancy_serializes_transfers():
    sched, bus, clients, stats, _ = make_bus(
        addr_occupancy=1, data_latency=100, data_occupancy=50
    )
    times = []
    for i in range(3):
        txn = BusTransaction(TxnKind.READ, 0x40 * (i + 1), requester=0)
        bus.request(txn, lambda t, d: times.append(sched.now))
    sched.run()
    # Transfers start at 0/50/100 on the data network.
    assert times[0] >= 100
    assert times[1] >= times[0] + 49
    assert times[2] >= times[1] + 49


def test_writeback_updates_memory_at_grant():
    sched, bus, clients, stats, mem = make_bus()
    txn = BusTransaction(TxnKind.WRITEBACK, 0x40, requester=0, data=[9] * 8)
    bus.request(txn)
    sched.run()
    assert mem.read_line(0x40) == [9] * 8


def test_txn_stats_counted():
    sched, bus, clients, stats, _ = make_bus()
    bus.request(BusTransaction(TxnKind.READ, 0x40, requester=0))
    bus.request(BusTransaction(TxnKind.UPGRADE, 0x80, requester=1))
    sched.run()
    assert stats["bus.txn.read"] == 1
    assert stats["bus.txn.upgrade"] == 1
    assert stats["bus.txn.total"] == 2
    assert stats["bus.txn.from_memory"] == 1


def test_pre_grant_cancellation():
    sched, bus, clients, stats, _ = make_bus()
    clients[0].pre_grant = lambda txn: False
    done = []
    bus.request(
        BusTransaction(TxnKind.VALIDATE, 0x40, requester=0),
        lambda t, d: done.append(1),
    )
    sched.run()
    assert not done
    assert stats["bus.txn.cancelled"] == 1
    assert clients[1].applied == []


def test_jitter_perturbs_completion_times():
    from repro.common.rng import SplitRng

    def completion_with(seed):
        sched = Scheduler()
        stats = StatsRegistry()
        bus = SnoopBus(
            sched, BusConfig(), MainMemory(64), stats.scoped("bus"),
            jitter=25, rng=SplitRng(seed),
        )
        for c in (_StubClient(0), _StubClient(1)):
            bus.attach(c)
        out = []
        bus.request(
            BusTransaction(TxnKind.READ, 0x40, requester=0),
            lambda t, d: out.append(sched.now),
        )
        sched.run()
        return out[0]

    times = {completion_with(s) for s in range(8)}
    assert len(times) > 1  # jitter actually varies timing
