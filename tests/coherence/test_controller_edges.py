"""Controller edge cases: transaction races, eviction side effects."""

import dataclasses

import pytest

from repro.coherence.messages import TxnKind
from repro.coherence.states import LineState
from tests.harness import MemHarness

ADDR = 0x10000


class TestUpgradeConversion:
    def test_racing_upgrades_convert_to_readx(self, tiny_config):
        """Two sharers upgrade simultaneously: the loser's Upgrade must
        convert to a ReadX at its grant (its copy is gone)."""
        h = MemHarness(tiny_config)
        h.load(0, ADDR)
        h.load(1, ADDR)  # both S
        done = [0]
        # Queue both upgrades back-to-back before draining.
        h.nodes[0].store(ADDR, 1, 0, lambda: done.__setitem__(0, done[0] + 1))
        h.nodes[1].store(ADDR, 2, 0, lambda: done.__setitem__(0, done[0] + 1))
        h.drain()
        assert done[0] == 2
        assert h.stats["ctrl1.upgrade_converted_to_readx"] == 1
        # The second store serialized after the first: value is 2.
        assert h.load(0, ADDR)[1] == 2

    def test_validate_cancelled_when_line_changes(self, mesti_config):
        """A validate whose owner got invalidated before grant must be
        cancelled, never re-installing wrong data."""
        h = MemHarness(mesti_config)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        # Queue: P0's reverting store (validate) and P1's write, and
        # make sure nothing re-installs stale data.
        h.store(0, ADDR, 0)  # triggers validate broadcast
        h.store(1, ADDR, 7)  # invalidates P0
        h.drain()
        assert h.load(0, ADDR)[1] == 7
        assert h.load(1, ADDR)[1] == 7


class TestEvictionEffects:
    def _force_evict(self, h, proc, addr):
        l2 = h.controllers[proc].l2
        stride = l2.config.num_sets * 64
        for i in range(1, l2.config.ways + 1):
            h.load(proc, addr + i * stride)

    def test_t_line_eviction_is_silent(self, mesti_config):
        h = MemHarness(mesti_config)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)  # P1 -> T
        assert h.line_state(1, ADDR) is LineState.T
        wb_before = h.stats["bus.txn.writeback"]
        self._force_evict(h, 1, ADDR)
        assert h.line_state(1, ADDR) is None
        assert h.stats["bus.txn.writeback"] == wb_before  # T is not dirty

    def test_owner_eviction_ends_ts_tracking(self, mesti_config):
        h = MemHarness(mesti_config)
        h.store(0, ADDR, 0)
        h.load(1, ADDR)
        h.store(0, ADDR, 1)
        self._force_evict(h, 0, ADDR)  # dirty eviction: writeback
        assert h.memory.read_line(ADDR)[0] == 1
        # The remote T copy was dropped by the writeback (conservative
        # versioning) — no validate can ever re-install it.
        assert h.line_state(1, ADDR) is LineState.I

    def test_o_state_eviction_writes_back(self, tiny_config):
        h = MemHarness(tiny_config)
        h.store(0, ADDR, 9)
        h.load(1, ADDR)  # P0 -> O
        assert h.line_state(0, ADDR) is LineState.O
        self._force_evict(h, 0, ADDR)
        assert h.memory.read_line(ADDR)[0] == 9


class TestMshrBehavior:
    def test_mshr_full_defers_and_completes(self, tiny_config):
        cfg = tiny_config.with_core(mshrs=1)
        h = MemHarness(cfg)
        ops = [h.new_op() for _ in range(3)]
        for i, op in enumerate(ops):
            h.nodes[0].load(ADDR + i * 64, op)
        assert h.stats["node0.mshr.stalls"] >= 1
        h.drain()
        for op in ops:
            assert op.value == 0

    def test_merged_loads_share_one_transaction(self, tiny_config):
        h = MemHarness(tiny_config)
        before = h.stats["bus.txn.total"]
        ops = [h.new_op() for _ in range(3)]
        for op in ops:
            h.nodes[0].load(ADDR, op)
        h.drain()
        assert h.stats["bus.txn.total"] == before + 1
        assert all(op.value == 0 for op in ops)


class TestSnoopAwareSuppression:
    def test_suppression_state_per_line(self, mesti_config):
        from repro.common.config import ValidatePolicy

        cfg = mesti_config.with_protocol(validate_policy=ValidatePolicy.SNOOP_AWARE)
        h = MemHarness(cfg)
        other = ADDR + 0x1000
        # Line A: no remote copies -> suppressed.
        h.store(0, ADDR, 0)
        h.store(0, ADDR, 1)
        h.store(0, ADDR, 0)
        # Line B: a remote copy exists -> validated.
        h.store(0, other, 0)
        h.load(1, other)
        h.store(0, other, 1)
        h.store(0, other, 0)
        h.drain()
        assert h.stats["bus.txn.validate"] == 1
