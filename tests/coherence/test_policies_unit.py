"""Validate-policy objects in isolation."""

import pytest

from repro.common.config import PredictorConfig, ValidatePolicy
from repro.common.stats import StatsRegistry
from repro.coherence.messages import SnoopResult
from repro.coherence.policies import (
    AlwaysValidate,
    PredictorValidate,
    SnoopAwareValidate,
    make_validate_policy,
)
from repro.memory.cache import CacheLine


def line():
    out = CacheLine(8)
    out.base = 0
    return out


def test_factory_dispatch():
    stats = StatsRegistry().scoped("p")
    assert isinstance(
        make_validate_policy(ValidatePolicy.ALWAYS, PredictorConfig(), stats),
        AlwaysValidate,
    )
    assert isinstance(
        make_validate_policy(ValidatePolicy.SNOOP_AWARE, PredictorConfig(), stats),
        SnoopAwareValidate,
    )
    assert isinstance(
        make_validate_policy(ValidatePolicy.PREDICTOR, PredictorConfig(), stats),
        PredictorValidate,
    )


def test_always_policy():
    policy = AlwaysValidate()
    assert policy.should_validate(line())


class TestSnoopAware:
    def test_suppresses_after_unshared_response(self):
        policy = SnoopAwareValidate()
        l = line()
        policy.on_invalidating_response(l, SnoopResult(shared=False))
        assert not policy.should_validate(l)

    def test_reenabled_by_shared_response(self):
        policy = SnoopAwareValidate()
        l = line()
        policy.on_invalidating_response(l, SnoopResult(shared=False))
        policy.on_invalidating_response(l, SnoopResult(shared=True))
        assert policy.should_validate(l)

    def test_default_is_validate(self):
        assert SnoopAwareValidate().should_validate(line())


class TestPredictorPolicy:
    def make(self, **kw):
        return PredictorValidate(
            PredictorConfig(**kw), StatsRegistry().scoped("p")
        )

    def test_cold_line_uses_initial_confidence(self):
        policy = self.make(initial_confidence=4, threshold=4)
        l = line()
        policy.on_line_filled(l)
        assert policy.should_validate(l)
        low = self.make(initial_confidence=3, threshold=4)
        l2 = line()
        low.on_line_filled(l2)
        assert not low.should_validate(l2)

    def test_upgrade_response_trains(self):
        policy = self.make(initial_confidence=4, threshold=4)
        l = line()
        policy.on_line_filled(l)
        policy.should_validate(l)  # TS detect -> sent
        policy.on_intermediate_store(l, needs_upgrade=True)
        policy.on_upgrade_response(l, useful=False)
        assert l.pred_conf == 3
        assert not policy.should_validate(l)

    def test_external_request_recovers(self):
        policy = self.make(initial_confidence=3, threshold=4)
        l = line()
        policy.on_line_filled(l)
        policy.should_validate(l)  # suppressed, TS_DETECTED
        policy.on_external_request(l, None)
        assert l.pred_conf == 4
        assert policy.should_validate(l)

    def test_exclusive_intermediate_store_resets_state(self):
        from repro.memory.cache import PRED_START

        policy = self.make(initial_confidence=3, threshold=4)
        l = line()
        policy.on_line_filled(l)
        policy.should_validate(l)
        policy.on_intermediate_store(l, needs_upgrade=False)
        assert l.pred_state == PRED_START
